// Package service models latency-critical interactive services as M/G/k
// queueing systems whose per-request service demand is inflated by
// shared-resource contention. It provides calibrated presets for the three
// services the paper evaluates — NGINX, memcached, and MongoDB — and exposes
// exactly the control surface Pliant uses on real systems: the number of
// cores allocated to the service, and end-to-end latency observed at the
// client.
package service

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/interference"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/workload"
)

// Config describes an interactive service model.
type Config struct {
	Name string

	// QoS is the 99th-percentile latency target (paper Sec. 5: the p99
	// before the knee of the latency-throughput curve in isolation).
	QoS sim.Duration

	// Demand samples per-request worker occupancy in seconds at nominal
	// (uncontended) execution.
	Demand workload.Sampler

	// WorkersPerCore is how many request-serving workers each allocated
	// core multiplexes. CPU-bound services (NGINX, memcached) pin one
	// worker per core; I/O-bound services (MongoDB) overlap many blocked
	// threads per core.
	WorkersPerCore int

	// ContentionShare is the fraction of request demand that is CPU/memory
	// execution subject to interference slowdown; the remainder (e.g.,
	// disk time) is unaffected by cache and bandwidth pressure.
	ContentionShare float64

	// Sensitivity converts shared-resource shortfall into execution-time
	// inflation for the contention-exposed part of each request.
	Sensitivity interference.Sensitivity

	// LLCMB is the service's working-set pressure on the shared LLC and
	// BWPerCoreGBs its memory-bandwidth demand per busy core.
	LLCMB        float64
	BWPerCoreGBs float64

	// MaxBacklog bounds the pending-request queue in time units: the queue
	// holds at most the requests a full-speed server would clear in this
	// span. It mirrors the listen backlogs and connection limits of real
	// servers, which bound runaway sojourn times under overload; past it,
	// requests are dropped and accounted as worst-case latency samples.
	MaxBacklog sim.Duration
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("service: missing name")
	case c.QoS <= 0:
		return fmt.Errorf("service %s: QoS must be positive", c.Name)
	case c.Demand == nil:
		return fmt.Errorf("service %s: missing demand sampler", c.Name)
	case c.WorkersPerCore <= 0:
		return fmt.Errorf("service %s: workers per core must be positive", c.Name)
	case c.ContentionShare < 0 || c.ContentionShare > 1:
		return fmt.Errorf("service %s: contention share %v outside [0,1]", c.Name, c.ContentionShare)
	case c.MaxBacklog <= 0:
		return fmt.Errorf("service %s: max backlog must be positive", c.Name)
	}
	return nil
}

// Scaled returns a copy of the config with request timescales multiplied by
// f (demand and QoS together). Queueing behaviour relative to QoS is
// invariant under this scaling — utilization, tail ratios, and divergence
// rates are dimensionless — so the fast test profile uses f>1 to simulate
// proportionally fewer requests.
func (c Config) Scaled(f float64) Config {
	out := c
	out.QoS = c.QoS.Scale(f)
	out.MaxBacklog = c.MaxBacklog.Scale(f)
	out.Demand = scaledSampler{inner: c.Demand, f: f}
	return out
}

type scaledSampler struct {
	inner workload.Sampler
	f     float64
}

func (s scaledSampler) Sample(rng *sim.RNG) float64 { return s.inner.Sample(rng) * s.f }
func (s scaledSampler) Mean() float64               { return s.inner.Mean() * s.f }

// SaturationQPS returns the analytic saturation throughput at the given core
// count: workers divided by mean demand.
func (c Config) SaturationQPS(cores int) float64 {
	w := float64(cores * c.WorkersPerCore)
	return w / c.Demand.Mean()
}

// Instance is a running service inside a simulation.
type Instance struct {
	cfg Config
	eng *sim.Engine
	rng *sim.RNG

	cores    int
	slowdown float64

	// demand is the compiled form of cfg.Demand (same value stream, constants
	// hoisted), used on the per-request path.
	demand workload.Sampler

	// inflation, meanDemand, and qcap cache effectiveInflation(), the mean
	// inflated demand, and queueCap(): they change only on
	// SetCores/SetSlowdown, not per request.
	inflation  float64
	meanDemand float64
	qcap       int

	busy  int
	queue reqRing

	onLatency func(sim.Duration)

	served  uint64
	dropped uint64
}

type pendingRequest struct {
	arrived sim.Time
	demand  float64 // seconds, nominal
}

// reqRing is a growable ring buffer of pending requests: FIFO semantics
// without the per-pop slice shift and reallocation of a `queue = queue[1:]`
// slice. Capacity is retained across bursts, so the steady state allocates
// nothing.
type reqRing struct {
	buf  []pendingRequest
	head int
	n    int
}

// Len returns the number of queued requests.
func (r *reqRing) Len() int { return r.n }

// Push appends a request, growing the backing array when full.
func (r *reqRing) Push(req pendingRequest) {
	if r.n == len(r.buf) {
		grown := make([]pendingRequest, max(16, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = req
	r.n++
}

// Pop removes and returns the oldest request; it panics on an empty ring.
func (r *reqRing) Pop() pendingRequest {
	req := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return req
}

// New creates a service instance bound to an engine. The latency callback
// fires once per completed (or dropped) request with its end-to-end latency;
// it stands in for the client-side measurement point of the paper's monitor.
func New(eng *sim.Engine, rng *sim.RNG, cfg Config, cores int, onLatency func(sim.Duration)) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cores <= 0 {
		return nil, fmt.Errorf("service %s: needs at least one core", cfg.Name)
	}
	if onLatency == nil {
		onLatency = func(sim.Duration) {}
	}
	s := &Instance{
		cfg:       cfg,
		eng:       eng,
		rng:       rng,
		cores:     cores,
		slowdown:  1.0,
		demand:    compileSampler(cfg.Demand),
		onLatency: onLatency,
	}
	s.recalc()
	return s, nil
}

// compileSampler hoists per-sample constants out of the demand sampler,
// looking through the Scaled() wrapper (and flattening it, so the hot path
// pays one interface dispatch instead of two).
func compileSampler(d workload.Sampler) workload.Sampler {
	if sc, ok := d.(scaledSampler); ok {
		if flat := workload.CompileScaled(sc.inner, sc.f); flat != nil {
			return flat
		}
		return scaledSampler{inner: workload.Compile(sc.inner), f: sc.f}
	}
	return workload.Compile(d)
}

// recalc refreshes the cached per-request constants after a control change.
func (s *Instance) recalc() {
	s.inflation = 1 - s.cfg.ContentionShare + s.cfg.ContentionShare*s.slowdown
	s.meanDemand = s.cfg.Demand.Mean() * s.inflation
	cap := int(s.cfg.MaxBacklog.Seconds() / s.cfg.Demand.Mean() * float64(s.workers()))
	if cap < 4 {
		cap = 4
	}
	s.qcap = cap
}

// Config returns the service configuration.
func (s *Instance) Config() Config { return s.cfg }

// Cores returns the current core allocation.
func (s *Instance) Cores() int { return s.cores }

// Served returns the number of completed requests.
func (s *Instance) Served() uint64 { return s.served }

// Dropped returns the number of requests rejected at the queue cap.
func (s *Instance) Dropped() uint64 { return s.dropped }

// QueueLen returns the number of requests waiting (not in service).
func (s *Instance) QueueLen() int { return s.queue.Len() }

// workers returns the current number of request-serving workers.
func (s *Instance) workers() int { return s.cores * s.cfg.WorkersPerCore }

// SetCores changes the core allocation. Extra cores immediately begin
// draining the queue; removed cores take effect as in-flight requests finish
// (a running request is never aborted, matching cpuset repinning semantics).
func (s *Instance) SetCores(n int) {
	if n < 1 {
		n = 1
	}
	s.cores = n
	s.recalc()
	s.drainQueue()
}

// SetSlowdown updates the contention inflation applied to the CPU-exposed
// share of subsequently started requests.
func (s *Instance) SetSlowdown(f float64) {
	if f < 1 {
		f = 1
	}
	s.slowdown = f
	s.recalc()
}

// Slowdown returns the current contention inflation factor.
func (s *Instance) Slowdown() float64 { return s.slowdown }

// Arrive submits one request to the service at the current simulation time.
func (s *Instance) Arrive() {
	req := pendingRequest{arrived: s.eng.Now(), demand: s.demand.Sample(s.rng)}
	if s.busy < s.workers() {
		s.start(req)
		return
	}
	if s.queue.Len() >= s.qcap {
		// Queue overflow: the request is turned away. Count it as a
		// worst-case latency observation — an estimate of the sojourn it
		// would have seen — so the p99 reflects the overload instead of
		// silently dropping the slowest tail.
		s.dropped++
		est := s.estimatedSojourn()
		s.onLatency(est)
		return
	}
	s.queue.Push(req)
}

// estimatedSojourn approximates the latency a request joining the full queue
// would experience: queue length times mean inflated demand over workers.
func (s *Instance) estimatedSojourn() sim.Duration {
	perWorker := float64(s.queue.Len()+s.busy) * s.meanDemand / float64(s.workers())
	return sim.DurationOf(perWorker)
}

func (s *Instance) start(req pendingRequest) {
	s.busy++
	serviceTime := sim.DurationOf(req.demand * s.inflation)
	if serviceTime <= 0 {
		serviceTime = 1
	}
	// Completion rides the typed-event path: the instance is the handler and
	// the request's arrival instant the payload word, so the per-request hot
	// path captures no closure and allocates nothing.
	s.eng.AfterTyped(serviceTime, s, uint64(req.arrived))
}

// OnEvent implements sim.EventHandler: a request completion. The payload word
// is the request's arrival instant.
func (s *Instance) OnEvent(now sim.Time, arg uint64) {
	s.busy--
	s.served++
	s.onLatency(now.Sub(sim.Time(arg)))
	s.drainQueue()
}

func (s *Instance) drainQueue() {
	for s.busy < s.workers() && s.queue.Len() > 0 {
		s.start(s.queue.Pop())
	}
}

// Demand reports the service's current pressure on shared resources for the
// interference model: full working-set LLC pressure, and bandwidth
// proportional to allocated cores at the service's typical utilization.
// Allocated (not instantaneously busy) cores are used so the demand is a
// stable per-interval quantity, the granularity at which the contention
// model is evaluated.
func (s *Instance) Demand(tenant platform.TenantID) interference.Demand {
	return interference.Demand{
		Tenant:      tenant,
		LLCMB:       s.cfg.LLCMB,
		MemBWGBs:    s.cfg.BWPerCoreGBs * float64(s.cores),
		Sensitivity: s.cfg.Sensitivity,
	}
}
