package service

import (
	"testing"

	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
)

// benchInstance assembles a memcached-preset service fed by a self-rearming
// typed arrival source — the exact shape of the scenario hot path, minus the
// controller.
type benchArrivals struct {
	eng *sim.Engine
	rng *sim.RNG
	svc *Instance
	gap sim.Duration
}

func (a *benchArrivals) OnEvent(sim.Time, uint64) {
	a.svc.Arrive()
	a.eng.AfterTyped(a.gap, a, 0)
}

func newBenchInstance(tb testing.TB) (*sim.Engine, *benchArrivals) {
	tb.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(11)
	hist := stats.NewLatencyHistogram()
	cfg := Preset(Memcached).Scaled(16)
	svc, err := New(eng, rng.Split(1), cfg, 8, func(d sim.Duration) { hist.Record(float64(d)) })
	if err != nil {
		tb.Fatal(err)
	}
	qps := cfg.SaturationQPS(8) * 0.78
	arr := &benchArrivals{eng: eng, rng: rng.Split(2), svc: svc, gap: sim.DurationOf(1 / qps)}
	eng.ScheduleTyped(0, arr, 0)
	return eng, arr
}

// TestRequestPathAllocFree pins the tentpole invariant at the service layer:
// once warm, the full arrival→start→complete→drain→record cycle performs
// zero heap allocations.
func TestRequestPathAllocFree(t *testing.T) {
	eng, arr := newBenchInstance(t)
	eng.Run(eng.Now() + sim.Time(2*sim.Second)) // warm arenas, ring, histogram
	avg := testing.AllocsPerRun(50, func() {
		eng.Run(eng.Now() + sim.Time(100*sim.Millisecond))
	})
	if avg != 0 {
		t.Fatalf("request path allocates %v allocs/op in steady state, want 0", avg)
	}
	if arr.svc.Served() == 0 {
		t.Fatal("no requests served")
	}
}

// BenchmarkRequestPath measures the per-request cost of the service layer:
// one arrival event, one demand sample, one completion event, one histogram
// record.
func BenchmarkRequestPath(b *testing.B) {
	eng, arr := newBenchInstance(b)
	eng.Run(eng.Now() + sim.Time(2*sim.Second))
	b.ReportAllocs()
	b.ResetTimer()
	start := arr.svc.Served()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	b.ReportMetric(float64(arr.svc.Served()-start)/float64(b.N), "served/op")
}

// BenchmarkSetCores measures the control-plane recalc path, which the
// per-request path must not pay for.
func BenchmarkSetCores(b *testing.B) {
	eng, arr := newBenchInstance(b)
	eng.Run(eng.Now() + sim.Time(sim.Second))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr.svc.SetCores(7 + i&1)
	}
}
