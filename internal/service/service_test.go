package service

import (
	"testing"

	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
	"github.com/approx-sched/pliant/internal/workload"
)

func testConfig() Config {
	return Config{
		Name:            "test",
		QoS:             1 * sim.Millisecond,
		Demand:          workload.Constant(100e-6), // 100us deterministic
		WorkersPerCore:  1,
		ContentionShare: 1.0,
		MaxBacklog:      100 * sim.Millisecond, // 1000 requests per core at 100µs
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Config){
		"no name":      func(c *Config) { c.Name = "" },
		"zero qos":     func(c *Config) { c.QoS = 0 },
		"nil demand":   func(c *Config) { c.Demand = nil },
		"zero workers": func(c *Config) { c.WorkersPerCore = 0 },
		"share > 1":    func(c *Config) { c.ContentionShare = 1.5 },
		"share < 0":    func(c *Config) { c.ContentionShare = -0.1 },
		"zero cap":     func(c *Config) { c.MaxBacklog = 0 },
	}
	for name, mutate := range cases {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", name)
		}
	}
}

func TestNewValidates(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	if _, err := New(eng, rng, testConfig(), 0, nil); err == nil {
		t.Fatal("zero cores accepted")
	}
	bad := testConfig()
	bad.MaxBacklog = 0
	if _, err := New(eng, rng, bad, 2, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSingleRequestLatencyEqualsDemand(t *testing.T) {
	eng := sim.NewEngine()
	var lat sim.Duration
	svc, err := New(eng, sim.NewRNG(1), testConfig(), 2, func(d sim.Duration) { lat = d })
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(0, func() { svc.Arrive() })
	eng.Run(sim.Forever)
	if lat != 100*sim.Microsecond {
		t.Fatalf("latency = %v, want 100µs", lat)
	}
	if svc.Served() != 1 {
		t.Fatalf("served = %d", svc.Served())
	}
}

func TestQueueingWhenAllWorkersBusy(t *testing.T) {
	eng := sim.NewEngine()
	var lats []sim.Duration
	svc, _ := New(eng, sim.NewRNG(1), testConfig(), 1, func(d sim.Duration) { lats = append(lats, d) })
	// Two simultaneous arrivals on one worker: second waits for the first.
	eng.Schedule(0, func() { svc.Arrive(); svc.Arrive() })
	eng.Run(sim.Forever)
	if len(lats) != 2 {
		t.Fatalf("completed %d, want 2", len(lats))
	}
	if lats[0] != 100*sim.Microsecond || lats[1] != 200*sim.Microsecond {
		t.Fatalf("latencies = %v, want [100µs 200µs]", lats)
	}
}

func TestSlowdownInflatesService(t *testing.T) {
	eng := sim.NewEngine()
	var lat sim.Duration
	svc, _ := New(eng, sim.NewRNG(1), testConfig(), 1, func(d sim.Duration) { lat = d })
	svc.SetSlowdown(2.0)
	eng.Schedule(0, func() { svc.Arrive() })
	eng.Run(sim.Forever)
	if lat != 200*sim.Microsecond {
		t.Fatalf("latency = %v, want 200µs under 2x slowdown", lat)
	}
	// Slowdown below 1 clamps to 1.
	svc.SetSlowdown(0.5)
	if svc.Slowdown() != 1.0 {
		t.Fatalf("Slowdown clamped to %v, want 1.0", svc.Slowdown())
	}
}

func TestContentionShareLimitsInflation(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.ContentionShare = 0.4 // only 40% of demand inflates
	var lat sim.Duration
	svc, _ := New(eng, sim.NewRNG(1), cfg, 1, func(d sim.Duration) { lat = d })
	svc.SetSlowdown(2.0)
	eng.Schedule(0, func() { svc.Arrive() })
	eng.Run(sim.Forever)
	// 100us * (0.6 + 0.4*2) = 140us.
	if lat != 140*sim.Microsecond {
		t.Fatalf("latency = %v, want 140µs", lat)
	}
}

func TestSetCoresDrainsQueue(t *testing.T) {
	eng := sim.NewEngine()
	done := 0
	svc, _ := New(eng, sim.NewRNG(1), testConfig(), 1, func(sim.Duration) { done++ })
	eng.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			svc.Arrive()
		}
		if svc.QueueLen() != 3 {
			t.Errorf("queue = %d, want 3", svc.QueueLen())
		}
		svc.SetCores(4)
		if svc.QueueLen() != 0 {
			t.Errorf("queue = %d after adding cores, want 0", svc.QueueLen())
		}
	})
	eng.Run(sim.Forever)
	if done != 4 {
		t.Fatalf("completed %d, want 4", done)
	}
}

func TestSetCoresFloorsAtOne(t *testing.T) {
	eng := sim.NewEngine()
	svc, _ := New(eng, sim.NewRNG(1), testConfig(), 2, nil)
	svc.SetCores(0)
	if svc.Cores() != 1 {
		t.Fatalf("Cores = %d, want floor of 1", svc.Cores())
	}
}

func TestQueueCapDropsAndAccounts(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.MaxBacklog = 500 * sim.Microsecond // 5 requests on one core
	var lats []sim.Duration
	svc, _ := New(eng, sim.NewRNG(1), cfg, 1, func(d sim.Duration) { lats = append(lats, d) })
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ { // 1 in service, 5 queued, 4 dropped
			svc.Arrive()
		}
	})
	eng.Run(sim.Forever)
	if svc.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", svc.Dropped())
	}
	if svc.Served() != 6 {
		t.Fatalf("served = %d, want 6", svc.Served())
	}
	// All 10 requests produced a latency observation (drops use estimates).
	if len(lats) != 10 {
		t.Fatalf("latency observations = %d, want 10", len(lats))
	}
}

func TestWorkersPerCoreMultiplexing(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.WorkersPerCore = 4
	done := 0
	svc, _ := New(eng, sim.NewRNG(1), cfg, 1, func(sim.Duration) { done++ })
	eng.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			svc.Arrive()
		}
		if svc.QueueLen() != 0 {
			t.Errorf("queue = %d, want 0 with 4 workers", svc.QueueLen())
		}
	})
	eng.Run(sim.Forever)
	if done != 4 {
		t.Fatalf("completed %d", done)
	}
}

func TestScaledPreservesUtilization(t *testing.T) {
	cfg := testConfig()
	scaled := cfg.Scaled(10)
	if scaled.QoS != 10*sim.Millisecond {
		t.Fatalf("scaled QoS = %v", scaled.QoS)
	}
	if scaled.MaxBacklog != sim.Second {
		t.Fatalf("scaled MaxBacklog = %v", scaled.MaxBacklog)
	}
	if got, want := scaled.Demand.Mean(), cfg.Demand.Mean()*10; got != want {
		t.Fatalf("scaled demand mean = %v, want %v", got, want)
	}
	// Saturation QPS scales down by 10x; utilization at scaled rate matches.
	if got, want := scaled.SaturationQPS(4), cfg.SaturationQPS(4)/10; got != want {
		t.Fatalf("scaled saturation = %v, want %v", got, want)
	}
}

func TestSaturationQPS(t *testing.T) {
	cfg := testConfig() // 100us constant demand
	if got := cfg.SaturationQPS(1); got != 10000 {
		t.Fatalf("SaturationQPS(1) = %v, want 10000", got)
	}
	if got := cfg.SaturationQPS(8); got != 80000 {
		t.Fatalf("SaturationQPS(8) = %v, want 80000", got)
	}
}

func TestDemandReportsPressure(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.LLCMB = 12
	cfg.BWPerCoreGBs = 1.5
	svc, _ := New(eng, sim.NewRNG(1), cfg, 4, nil)
	d := svc.Demand("svc")
	if d.Tenant != "svc" {
		t.Fatalf("tenant = %s", d.Tenant)
	}
	if d.LLCMB != 12 {
		t.Fatalf("LLCMB = %v", d.LLCMB)
	}
	if d.MemBWGBs != 6 {
		t.Fatalf("MemBWGBs = %v, want 1.5*4", d.MemBWGBs)
	}
}

func TestPresetsValidateAndMatchPaper(t *testing.T) {
	for _, c := range Classes() {
		cfg := Preset(c)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v preset invalid: %v", c, err)
		}
	}
	if QoSOf(NGINX) != 10*sim.Millisecond {
		t.Errorf("NGINX QoS = %v, want 10ms", QoSOf(NGINX))
	}
	if QoSOf(Memcached) != 200*sim.Microsecond {
		t.Errorf("memcached QoS = %v, want 200µs", QoSOf(Memcached))
	}
	if QoSOf(MongoDB) != 100*sim.Millisecond {
		t.Errorf("MongoDB QoS = %v, want 100ms", QoSOf(MongoDB))
	}
	if NGINX.String() != "nginx" || Memcached.String() != "memcached" || MongoDB.String() != "mongodb" {
		t.Error("class names do not match the paper's labels")
	}
}

func TestPresetSaturationScale(t *testing.T) {
	// Paper Fig. 8 sweeps: NGINX to 700K QPS, memcached to 600K, MongoDB to
	// 400 QPS. At the fair 8-core share saturation should be near those
	// upper labels.
	nginx := Preset(NGINX).SaturationQPS(8)
	if nginx < 600e3 || nginx > 850e3 {
		t.Errorf("nginx saturation = %.0f, want ~700K", nginx)
	}
	// The heavy-tailed demand calibration (which pins the isolated p99 near
	// the strict 200µs QoS) puts saturation near 410K; the paper's axis
	// reaches 600K.
	mc := Preset(Memcached).SaturationQPS(8)
	if mc < 350e3 || mc > 650e3 {
		t.Errorf("memcached saturation = %.0f, want 400-600K", mc)
	}
	mongo := Preset(MongoDB).SaturationQPS(8)
	if mongo < 250 || mongo > 650 {
		t.Errorf("mongodb saturation = %.0f, want ~400", mongo)
	}
}

// runIsolated drives the service at the given fraction of its 8-core
// saturation for the given duration and returns the p99 latency.
func runIsolated(t *testing.T, cls Class, loadFrac, slowdown float64, dur sim.Duration) sim.Duration {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(1234)
	hist := stats.NewLatencyHistogram()
	cfg := Preset(cls)
	svc, err := New(eng, rng.Split(1), cfg, 8, func(d sim.Duration) {
		hist.Record(float64(d))
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetSlowdown(slowdown)
	qps := cfg.SaturationQPS(8) * loadFrac
	arr, err := workload.NewPoisson(qps)
	if err != nil {
		t.Fatal(err)
	}
	// Inline generator to avoid importing client (cycle-free but keeps the
	// test self-contained).
	var nextArrival func()
	nextArrival = func() {
		svc.Arrive()
		eng.After(arr.Next(rng), nextArrival)
	}
	eng.After(arr.Next(rng), nextArrival)
	eng.Run(sim.Time(dur))
	return sim.Duration(hist.P99())
}

func TestIsolatedServicesMeetQoSAtPaperLoad(t *testing.T) {
	// Paper Sec. 5: services run at 75–80% of saturation and meet QoS in
	// isolation (QoS is defined from the isolated latency-throughput curve).
	for _, cls := range Classes() {
		p99 := runIsolated(t, cls, 0.78, 1.0, 3*sim.Second)
		if qos := QoSOf(cls); p99 > qos {
			t.Errorf("%v isolated at 78%%: p99 %v exceeds QoS %v", cls, p99, qos)
		}
	}
}

func TestContentionCausesQoSViolation(t *testing.T) {
	// A sustained ~1.35x inflation at 78% load must blow through QoS for the
	// CPU-bound services (the paper's precise-mode violations).
	for _, cls := range []Class{NGINX, Memcached} {
		p99 := runIsolated(t, cls, 0.78, 1.35, 3*sim.Second)
		if qos := QoSOf(cls); p99 <= qos {
			t.Errorf("%v under 1.35x contention: p99 %v did not violate QoS %v", cls, p99, qos)
		}
	}
}

func TestMongoDBTolerantToModestContention(t *testing.T) {
	// MongoDB's disk-dominated requests shield it from modest contention
	// (paper: "the I/O-bound MongoDB needs no additional cores ... in many
	// cases").
	p99 := runIsolated(t, MongoDB, 0.75, 1.15, 4*sim.Second)
	if qos := QoSOf(MongoDB); p99 > qos {
		t.Errorf("mongodb under 1.15x contention: p99 %v exceeds QoS %v", p99, qos)
	}
}
