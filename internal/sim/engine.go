package sim

import "fmt"

// Event is the handle returned by the closure-based Schedule/After API. It
// may be passed to Cancel. Events with equal timestamps fire in scheduling
// order (FIFO), which keeps the simulation deterministic.
type Event struct {
	id        EventID
	cancelled bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

// EventID is the value handle of the typed-event API. The zero EventID is
// valid to cancel (a no-op), so callers can track "no pending event" without
// a pointer.
type EventID struct {
	idx int32 // slot index + 1; 0 = none
	seq uint64
}

// Valid reports whether the ID refers to an event that was scheduled (it may
// have fired or been cancelled since).
func (id EventID) Valid() bool { return id.idx != 0 }

// EventHandler is the typed-event interface: the allocation-free alternative
// to scheduling closures. A single handler instance is typically registered
// for many events, with the payload word disambiguating them (a request's
// arrival instant, an index into caller-owned state, ...).
type EventHandler interface {
	// OnEvent fires at the event's timestamp with the payload word passed to
	// ScheduleTyped.
	OnEvent(now Time, arg uint64)
}

// freeSeq marks a slot with no current occupant; live events always carry
// their unique schedule sequence number instead.
const freeSeq = ^uint64(0)

// eventSlot is the arena record of one scheduled event. Slots are recycled
// through a free list once the event fires or is cancelled; the occupant's
// unique seq distinguishes it from stale handles and stale heap entries.
type eventSlot struct {
	seq uint64 // freeSeq when unoccupied
	fn  func()
	h   EventHandler
	arg uint64
}

// idxBits is the width of the slot index inside a heap key: up to 16M events
// pending at once, leaving 40 bits of schedule sequence (a trillion events
// per engine lifetime — Reset starts a fresh sequence).
const idxBits = 24

// heapEntry is one node of the 4-ary min-heap: the timestamp plus
// (seq<<idxBits | idx). Packing keeps entries at 16 bytes, and since seq
// occupies the high bits, comparing keys compares seq — the FIFO tiebreak
// for equal timestamps.
type heapEntry struct {
	at  Time
	key uint64
}

// Engine is the discrete-event simulation core. It is not safe for concurrent
// use: the simulated world is single-threaded by design (determinism), and
// parallelism belongs outside the engine (e.g., running independent scenarios
// on separate goroutines, each with its own Engine).
//
// The event queue is a hand-rolled 4-ary min-heap of value entries ordered by
// (at, seq) — no container/heap interface boxing, no per-event heap
// allocation. Fired and cancelled slots return to a free list, so the steady
// state of the typed-event API allocates nothing. Cancellation is lazy: the
// slot is released in O(1) and its heap entry is dropped when it surfaces.
type Engine struct {
	now     Time
	seq     uint64
	fired   uint64
	live    int
	stopped bool

	heap  []heapEntry
	slots []eventSlot
	free  []int32

	// lane is a ring-buffer FIFO holding events from monotone sources (open-
	// loop arrival generators): pushes arrive in nondecreasing time order, so
	// no heap sifting is needed — the run loop merges the lane head with the
	// heap top by (at, seq). Purely an optimization: ScheduleMonotoneTyped
	// falls back to the heap whenever monotonicity would not hold.
	lane       []heapEntry
	laneHead   int
	laneLen    int
	laneLastAt Time
}

// NewEngine returns an engine positioned at t=0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return e.live }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Reset returns the engine to t=0 with an empty queue, keeping the heap and
// slot arenas for reuse. Outstanding Event/EventID handles are invalidated —
// the schedule sequence continues across Reset, so a stale pre-Reset handle
// can never alias a post-Reset event and cancelling one is a guaranteed
// no-op. Event order depends only on relative seq, so a reset engine behaves
// identically to a fresh one and episode runners can recycle engines across
// runs without perturbing determinism.
func (e *Engine) Reset() {
	e.now, e.fired, e.live, e.stopped = 0, 0, 0, false
	e.heap = e.heap[:0]
	e.laneHead, e.laneLen, e.laneLastAt = 0, 0, 0
	e.free = e.free[:0]
	for i := range e.slots {
		s := &e.slots[i]
		s.seq = freeSeq
		s.fn, s.h, s.arg = nil, nil, 0
		e.free = append(e.free, int32(i))
	}
}

// allocSlot reserves a slot for a new event and returns its heap/lane entry.
func (e *Engine) allocSlot(at Time, fn func(), h EventHandler, arg uint64) (heapEntry, EventID) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		if len(e.slots) >= 1<<idxBits {
			panic("sim: too many pending events")
		}
		e.slots = append(e.slots, eventSlot{})
		idx = int32(len(e.slots) - 1)
	}
	seq := e.seq
	if seq >= 1<<(64-idxBits) {
		panic("sim: schedule sequence exhausted; Reset the engine")
	}
	e.seq++
	s := &e.slots[idx]
	s.seq, s.fn, s.h, s.arg = seq, fn, h, arg
	e.live++
	return heapEntry{at: at, key: seq<<idxBits | uint64(idx)}, EventID{idx: idx + 1, seq: seq}
}

// alloc reserves a slot and pushes its heap entry.
func (e *Engine) alloc(at Time, fn func(), h EventHandler, arg uint64) EventID {
	ent, id := e.allocSlot(at, fn, h, arg)
	e.push(ent)
	return id
}

// release recycles a slot after its event fired or was cancelled.
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.seq = freeSeq
	s.fn, s.h, s.arg = nil, nil, 0
	e.free = append(e.free, idx)
}

// Schedule runs fn at the given instant. Scheduling in the past panics: it
// would silently corrupt causality. The returned Event may be cancelled.
//
// This closure API allocates the captured closure and the Event handle; the
// per-request hot path should use ScheduleTyped instead.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	return &Event{id: e.alloc(at, fn, nil, 0)}
}

// After runs fn after delay d from the current time.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// ScheduleTyped runs handler.OnEvent(at, arg) at the given instant. It is the
// allocation-free form of Schedule: the handler is a long-lived object and
// arg a payload word, so no closure is captured and the returned EventID is a
// value. Scheduling in the past panics.
func (e *Engine) ScheduleTyped(at Time, h EventHandler, arg uint64) EventID {
	if h == nil {
		panic("sim: scheduling nil event handler")
	}
	return e.alloc(at, nil, h, arg)
}

// AfterTyped runs handler.OnEvent after delay d from the current time.
func (e *Engine) AfterTyped(d Duration, h EventHandler, arg uint64) EventID {
	if d < 0 {
		d = 0
	}
	return e.ScheduleTyped(e.now.Add(d), h, arg)
}

// ScheduleMonotoneTyped is ScheduleTyped for event sources whose timestamps
// never decrease (an open-loop arrival generator rescheduling itself). Such
// events take a sift-free FIFO lane instead of the heap; execution order is
// identical — the run loop merges lane and heap by the same (at, seq) total
// order. If at is below the lane's newest timestamp the event simply goes to
// the heap, so the lane is always safe to use.
func (e *Engine) ScheduleMonotoneTyped(at Time, h EventHandler, arg uint64) EventID {
	if h == nil {
		panic("sim: scheduling nil event handler")
	}
	if at < e.laneLastAt {
		return e.alloc(at, nil, h, arg)
	}
	ent, id := e.allocSlot(at, nil, h, arg)
	e.laneLastAt = at
	e.lanePush(ent)
	return id
}

// AfterMonotoneTyped runs handler.OnEvent after delay d via the monotone
// lane.
func (e *Engine) AfterMonotoneTyped(d Duration, h EventHandler, arg uint64) EventID {
	if d < 0 {
		d = 0
	}
	return e.ScheduleMonotoneTyped(e.now.Add(d), h, arg)
}

// lanePush appends an entry to the monotone FIFO, growing the ring when
// full.
func (e *Engine) lanePush(ent heapEntry) {
	if e.laneLen == len(e.lane) {
		grown := make([]heapEntry, 2*len(e.lane))
		if len(grown) == 0 {
			grown = make([]heapEntry, 16)
		}
		for i := 0; i < e.laneLen; i++ {
			grown[i] = e.lane[(e.laneHead+i)%len(e.lane)]
		}
		e.lane = grown
		e.laneHead = 0
	}
	e.lane[(e.laneHead+e.laneLen)%len(e.lane)] = ent
	e.laneLen++
}

// lanePop removes the lane head.
func (e *Engine) lanePop() {
	e.laneHead = (e.laneHead + 1) % len(e.lane)
	e.laneLen--
}

// Cancel removes a scheduled event in O(1): the slot is recycled immediately
// and the heap entry tombstoned (dropped lazily when it reaches the top).
// Cancelling an already-fired or already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	if e.CancelID(ev.id) {
		ev.cancelled = true
	}
}

// CancelID cancels a typed event by ID, reporting whether a live event was
// cancelled. Zero, fired, and already-cancelled IDs are no-ops.
func (e *Engine) CancelID(id EventID) bool {
	if id.idx == 0 {
		return false
	}
	idx := id.idx - 1
	if int(idx) >= len(e.slots) || e.slots[idx].seq != id.seq {
		return false
	}
	e.release(idx)
	e.live--
	return true
}

// less orders heap entries by (at, seq): a strict total order, since seq is
// unique per engine and forms the key's high bits.
func less(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

// push appends an entry and sifts it up the 4-ary heap.
func (e *Engine) push(ent heapEntry) {
	h := append(e.heap, ent)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ent, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
	e.heap = h
}

// popTop removes the minimum entry and restores the heap invariant.
func (e *Engine) popTop() {
	h := e.heap
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if n == 0 {
		return
	}
	h = h[:n]
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Find the smallest of up to four children.
		m := c
		if c+1 < n && less(h[c+1], h[m]) {
			m = c + 1
		}
		if c+2 < n && less(h[c+2], h[m]) {
			m = c + 2
		}
		if c+3 < n && less(h[c+3], h[m]) {
			m = c + 3
		}
		if !less(h[m], last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = last
}

// fire executes the event in slot idx, which must be top's live occupant.
func (e *Engine) fire(top heapEntry, idx int32, s *eventSlot) {
	fn, h, arg := s.fn, s.h, s.arg
	e.release(idx)
	e.now = top.at
	e.fired++
	e.live--
	if h != nil {
		h.OnEvent(top.at, arg)
	} else {
		fn()
	}
}

// next locates the earliest live event across the heap and the monotone
// lane, dropping tombstones of cancelled events on the way. It reports the
// entry and whether it came from the lane; ok is false when nothing is
// pending.
func (e *Engine) next() (top heapEntry, fromLane, ok bool) {
	for len(e.heap) > 0 {
		t := e.heap[0]
		if e.slots[t.key&(1<<idxBits-1)].seq == t.key>>idxBits {
			break
		}
		e.popTop()
	}
	for e.laneLen > 0 {
		t := e.lane[e.laneHead]
		if e.slots[t.key&(1<<idxBits-1)].seq == t.key>>idxBits {
			break
		}
		e.lanePop()
	}
	switch {
	case len(e.heap) == 0 && e.laneLen == 0:
		return heapEntry{}, false, false
	case len(e.heap) == 0:
		return e.lane[e.laneHead], true, true
	case e.laneLen == 0:
		return e.heap[0], false, true
	case less(e.lane[e.laneHead], e.heap[0]):
		return e.lane[e.laneHead], true, true
	default:
		return e.heap[0], false, true
	}
}

// pop removes the entry next() returned from its source structure.
func (e *Engine) pop(fromLane bool) {
	if fromLane {
		e.lanePop()
	} else {
		e.popTop()
	}
}

// Run executes events in timestamp order until the queue empties, the horizon
// passes, or Stop is called. The clock finishes at min(horizon, last event)
// when the queue drains, or exactly at the horizon otherwise.
func (e *Engine) Run(horizon Time) {
	e.stopped = false
	for !e.stopped {
		top, fromLane, ok := e.next()
		if !ok {
			break
		}
		if top.at > horizon {
			e.now = horizon
			return
		}
		e.pop(fromLane)
		idx := int32(top.key & (1<<idxBits - 1))
		e.fire(top, idx, &e.slots[idx])
	}
	if !e.stopped && e.now < horizon && horizon < Forever {
		e.now = horizon
	}
}

// Step executes exactly one event if any is pending, and reports whether one
// fired. Useful for fine-grained tests.
func (e *Engine) Step() bool {
	top, fromLane, ok := e.next()
	if !ok {
		return false
	}
	e.pop(fromLane)
	idx := int32(top.key & (1<<idxBits - 1))
	e.fire(top, idx, &e.slots[idx])
	return true
}

// Stop halts Run after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// tickerState re-arms a periodic callback through the typed-event path, so a
// long-running ticker schedules allocation-free.
type tickerState struct {
	e       *Engine
	period  Duration
	fn      func(Time)
	stopped bool
	pending EventID
}

// OnEvent implements EventHandler.
func (t *tickerState) OnEvent(now Time, _ uint64) {
	if t.stopped {
		return
	}
	t.fn(now)
	if !t.stopped {
		t.pending = t.e.AfterTyped(t.period, t, 0)
	}
}

// Ticker invokes fn every period, starting one period from now, until the
// returned stop function is called. fn receives the tick time.
func (e *Engine) Ticker(period Duration, fn func(Time)) (stop func()) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &tickerState{e: e, period: period, fn: fn}
	t.pending = e.AfterTyped(period, t, 0)
	return func() {
		t.stopped = true
		e.CancelID(t.pending)
	}
}
