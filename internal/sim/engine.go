package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (FIFO), which keeps the simulation deterministic.
type Event struct {
	at  Time
	seq uint64
	fn  func()
	// index in the heap, or -1 once popped/cancelled.
	index int
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.fn == nil }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is the discrete-event simulation core. It is not safe for concurrent
// use: the simulated world is single-threaded by design (determinism), and
// parallelism belongs outside the engine (e.g., running independent scenarios
// on separate goroutines, each with its own Engine).
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	fired   uint64
	stopped bool
}

// NewEngine returns an engine positioned at t=0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule runs fn at the given instant. Scheduling in the past panics: it
// would silently corrupt causality. The returned Event may be cancelled.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After runs fn after delay d from the current time.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.fn == nil {
		return
	}
	ev.fn = nil
	heap.Remove(&e.queue, ev.index)
}

// Run executes events in timestamp order until the queue empties, the horizon
// passes, or Stop is called. The clock finishes at min(horizon, last event)
// when the queue drains, or exactly at the horizon otherwise.
func (e *Engine) Run(horizon Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			e.now = horizon
			return
		}
		heap.Pop(&e.queue)
		e.now = next.at
		fn := next.fn
		next.fn = nil
		e.fired++
		fn()
	}
	if !e.stopped && e.now < horizon && horizon < Forever {
		e.now = horizon
	}
}

// Step executes exactly one event if any is pending, and reports whether one
// fired. Useful for fine-grained tests.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*Event)
		if next.fn == nil {
			continue
		}
		e.now = next.at
		fn := next.fn
		next.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Stop halts Run after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Ticker invokes fn every period, starting one period from now, until the
// returned stop function is called. fn receives the tick time.
func (e *Engine) Ticker(period Duration, fn func(Time)) (stop func()) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		if !stopped {
			pending = e.After(period, tick)
		}
	}
	pending = e.After(period, tick)
	return func() {
		stopped = true
		e.Cancel(pending)
	}
}
