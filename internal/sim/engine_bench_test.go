package sim

import "testing"

// countingHandler is a minimal typed-event consumer that re-arms itself,
// modeling the steady state of the request path: every fired event schedules
// a successor.
type countingHandler struct {
	e     *Engine
	fired uint64
	args  uint64
	limit uint64
}

func (h *countingHandler) OnEvent(now Time, arg uint64) {
	h.fired++
	h.args += arg
	if h.fired < h.limit {
		h.e.AfterTyped(Duration(1+arg%7), h, arg+1)
	}
}

func TestTypedEventDelivery(t *testing.T) {
	e := NewEngine()
	h := &countingHandler{e: e, limit: 100}
	e.ScheduleTyped(5, h, 3)
	e.Run(Forever)
	if h.fired != 100 {
		t.Fatalf("fired %d typed events, want 100", h.fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", e.Pending())
	}
}

func TestTypedAndClosureEventsInterleaveFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	rec := recordHandler{order: &order}
	e.Schedule(10, func() { order = append(order, 0) })
	e.ScheduleTyped(10, rec, 1)
	e.Schedule(10, func() { order = append(order, 2) })
	e.ScheduleTyped(10, rec, 3)
	e.Run(Forever)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time typed/closure events not FIFO: %v", order)
		}
	}
}

type recordHandler struct{ order *[]int }

func (r recordHandler) OnEvent(_ Time, arg uint64) { *r.order = append(*r.order, int(arg)) }

func TestCancelID(t *testing.T) {
	e := NewEngine()
	h := &countingHandler{e: e, limit: 1}
	id := e.ScheduleTyped(10, h, 0)
	if !e.CancelID(id) {
		t.Fatal("CancelID on a live event reported false")
	}
	if e.CancelID(id) {
		t.Fatal("second CancelID reported true")
	}
	if e.CancelID(EventID{}) {
		t.Fatal("CancelID on zero ID reported true")
	}
	e.Run(Forever)
	if h.fired != 0 {
		t.Fatal("cancelled typed event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestCancelledSlotReuseDoesNotMisfire(t *testing.T) {
	// A cancelled event's slot is recycled immediately; its stale heap entry
	// must not fire the slot's next occupant early.
	e := NewEngine()
	var order []int
	rec := recordHandler{order: &order}
	id := e.ScheduleTyped(5, rec, 99)
	e.CancelID(id)
	e.ScheduleTyped(20, rec, 0) // likely reuses the freed slot
	e.ScheduleTyped(30, rec, 1)
	e.Run(Forever)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("got %v, want [0 1]", order)
	}
}

func TestEngineReset(t *testing.T) {
	run := func(e *Engine) (uint64, Time) {
		h := &countingHandler{e: e, limit: 50}
		e.ScheduleTyped(1, h, 0)
		stop := e.Ticker(10, func(Time) {})
		e.Run(200)
		stop()
		return h.fired, e.Now()
	}
	fresh := NewEngine()
	f1, t1 := run(fresh)

	reused := NewEngine()
	run(reused)
	reused.Reset()
	if reused.Now() != 0 || reused.Pending() != 0 || reused.Fired() != 0 {
		t.Fatalf("Reset left now=%v pending=%d fired=%d", reused.Now(), reused.Pending(), reused.Fired())
	}
	f2, t2 := run(reused)
	if f1 != f2 || t1 != t2 {
		t.Fatalf("reset engine diverged: fired %d/%d, now %v/%v", f1, f2, t1, t2)
	}
}

func TestResetInvalidatesHandles(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	id := e.ScheduleTyped(10, nopHandler{}, 0)
	e.Reset()
	e.Cancel(ev) // must be a no-op, not a panic or a live-count underflow
	if e.CancelID(id) {
		t.Fatal("stale EventID cancelled after Reset")
	}
	e.Schedule(5, func() {})
	e.Run(Forever)
	if fired {
		t.Fatal("pre-reset event fired after Reset")
	}
	if e.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", e.Fired())
	}
}

type nopHandler struct{}

func (nopHandler) OnEvent(Time, uint64) {}

// monotoneSource re-arms itself through the monotone lane, like an open-loop
// arrival generator.
type monotoneSource struct {
	e     *Engine
	gap   Duration
	fired []Time
}

func (m *monotoneSource) OnEvent(now Time, _ uint64) {
	m.fired = append(m.fired, now)
	m.e.AfterMonotoneTyped(m.gap, m, 0)
}

func TestMonotoneLaneMergesWithHeap(t *testing.T) {
	e := NewEngine()
	src := &monotoneSource{e: e, gap: 10}
	e.ScheduleMonotoneTyped(10, src, 0)
	var heapFires []Time
	for i := 1; i <= 6; i++ {
		at := Time(i*10 - 5) // interleaved between lane events
		e.Schedule(at, func() { heapFires = append(heapFires, e.Now()) })
	}
	e.Run(60)
	if len(src.fired) != 6 || len(heapFires) != 6 {
		t.Fatalf("lane fired %d, heap fired %d, want 6/6", len(src.fired), len(heapFires))
	}
	for i, at := range src.fired {
		if at != Time((i+1)*10) {
			t.Fatalf("lane event %d fired at %v, want %v", i, at, (i+1)*10)
		}
	}
}

func TestMonotoneLaneSameTimeFIFO(t *testing.T) {
	// Lane and heap events at the same timestamp must fire in scheduling
	// order, exactly as two heap events would.
	e := NewEngine()
	var order []int
	rec := recordHandler{order: &order}
	e.ScheduleMonotoneTyped(10, rec, 0)
	e.Schedule(10, func() { order = append(order, 1) })
	e.ScheduleMonotoneTyped(10, rec, 2)
	e.Schedule(10, func() { order = append(order, 3) })
	e.Run(Forever)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time lane/heap events not FIFO: %v", order)
		}
	}
}

func TestMonotoneFallbackToHeap(t *testing.T) {
	// A non-monotone timestamp must not corrupt ordering: it silently takes
	// the heap.
	e := NewEngine()
	var order []int
	rec := recordHandler{order: &order}
	e.ScheduleMonotoneTyped(50, rec, 1)
	e.ScheduleMonotoneTyped(20, rec, 0) // violates lane order → heap
	e.ScheduleMonotoneTyped(60, rec, 2)
	e.Run(Forever)
	for i, v := range order {
		if v != i {
			t.Fatalf("fallback events fired out of order: %v", order)
		}
	}
}

func TestMonotoneCancel(t *testing.T) {
	e := NewEngine()
	var order []int
	rec := recordHandler{order: &order}
	id := e.ScheduleMonotoneTyped(10, rec, 99)
	e.ScheduleMonotoneTyped(20, rec, 0)
	if !e.CancelID(id) {
		t.Fatal("CancelID on a live lane event reported false")
	}
	e.Run(Forever)
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("got %v, want [0]", order)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

// TestTypedSteadyStateAllocFree pins the tentpole invariant: once the arena
// and heap are warm, the typed schedule→fire→reschedule cycle performs zero
// heap allocations.
func TestTypedSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	h := &countingHandler{e: e, limit: 1 << 62}
	// Warm up the slot arena and heap backing array.
	for i := 0; i < 64; i++ {
		e.ScheduleTyped(e.Now()+1, nopHandler{}, 0)
	}
	e.ScheduleTyped(e.Now()+1, h, 0)
	e.Run(e.Now() + 1000)

	avg := testing.AllocsPerRun(100, func() {
		e.Run(e.Now() + 1000)
	})
	if avg != 0 {
		t.Fatalf("typed event steady state allocates %v allocs/op, want 0", avg)
	}
}

// TestTickerAllocFree verifies a running ticker's re-arm path allocates
// nothing after setup.
func TestTickerAllocFree(t *testing.T) {
	e := NewEngine()
	ticks := 0
	stop := e.Ticker(5, func(Time) { ticks++ })
	defer stop()
	e.Run(100)
	avg := testing.AllocsPerRun(100, func() {
		e.Run(e.Now() + 100)
	})
	if avg != 0 {
		t.Fatalf("ticker steady state allocates %v allocs/op, want 0", avg)
	}
	if ticks == 0 {
		t.Fatal("ticker never fired")
	}
}

// BenchmarkScheduleFireTyped measures the steady-state typed event cycle —
// the per-request cost floor of every simulation in the repo.
func BenchmarkScheduleFireTyped(b *testing.B) {
	e := NewEngine()
	h := &countingHandler{e: e, limit: 1 << 62}
	e.ScheduleTyped(1, h, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkScheduleFireClosure is the legacy closure path, for comparison.
func BenchmarkScheduleFireClosure(b *testing.B) {
	e := NewEngine()
	var next func()
	next = func() { e.After(3, next) }
	e.Schedule(1, next)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkHeapChurn exercises the 4-ary heap with a deep queue: k events
// resident, each firing schedules a successor at a pseudo-random offset.
func BenchmarkHeapChurn(b *testing.B) {
	const depth = 1024
	e := NewEngine()
	h := &countingHandler{e: e, limit: 1 << 62}
	for i := 0; i < depth; i++ {
		e.ScheduleTyped(Time(i), h, uint64(i*2654435761))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkCancel measures O(1) lazy cancellation.
func BenchmarkCancel(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.ScheduleTyped(e.Now()+1000, nopHandler{}, 0)
		e.CancelID(id)
		if i&1023 == 1023 {
			e.Run(e.Now() + 1) // drain tombstones periodically
		}
	}
}
