package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run(Forever)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v after drain, want 30", e.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run(Forever)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {})
	e.Run(Forever)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(50, func() {})
}

func TestScheduleNilFnPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling nil fn did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestHorizonStopsClock(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(1000, func() { fired = true })
	e.Run(500)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != 500 {
		t.Fatalf("Now() = %v, want horizon 500", e.Now())
	}
	e.Run(2000)
	if !fired {
		t.Fatal("event within extended horizon did not fire")
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run(Forever)
	if at != 150 {
		t.Fatalf("After(50) fired at %v, want 150", at)
	}
}

func TestAfterNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(10, func() {
		e.After(-5, func() { fired = true })
	})
	e.Run(Forever)
	if !fired {
		t.Fatal("After with negative delay never fired")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Run(Forever)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling again, or cancelling nil, must not panic.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	events := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		events[i] = e.Schedule(Time(i*10), func() { got = append(got, i) })
	}
	e.Cancel(events[2])
	e.Run(Forever)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(Forever)
	if count != 3 {
		t.Fatalf("Stop did not halt run: %d events fired", count)
	}
	// Run resumes after Stop.
	e.Run(Forever)
	if count != 10 {
		t.Fatalf("resumed run fired %d total, want 10", count)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(5, func() { count++ })
	e.Schedule(7, func() { count++ })
	if !e.Step() || count != 1 || e.Now() != 5 {
		t.Fatalf("first Step: count=%d now=%v", count, e.Now())
	}
	if !e.Step() || count != 2 || e.Now() != 7 {
		t.Fatalf("second Step: count=%d now=%v", count, e.Now())
	}
	if e.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	stop := e.Ticker(100, func(now Time) { ticks = append(ticks, now) })
	e.Schedule(350, func() { stop() })
	e.Run(Forever)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks %v, want 3", len(ticks), ticks)
	}
	for i, at := range ticks {
		if at != Time((i+1)*100) {
			t.Fatalf("tick %d at %v, want %v", i, at, (i+1)*100)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var stop func()
	stop = e.Ticker(10, func(Time) {
		count++
		if count == 2 {
			stop()
		}
	})
	e.Run(Forever)
	if count != 2 {
		t.Fatalf("ticker fired %d times after in-callback stop, want 2", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-period ticker did not panic")
		}
	}()
	e.Ticker(0, func(Time) {})
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run(Forever)
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

// Property: for any set of timestamps, events fire in nondecreasing time order
// and the engine clock never runs backwards.
func TestEventOrderProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		e := NewEngine()
		var fireTimes []Time
		for _, s := range stamps {
			at := Time(s)
			e.Schedule(at, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run(Forever)
		if len(fireTimes) != len(stamps) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(2 * Second)
	if got := tm.Add(500 * Millisecond); got != Time(2500*Millisecond) {
		t.Fatalf("Add: got %v", got)
	}
	if got := tm.Sub(Time(Second)); got != Second {
		t.Fatalf("Sub: got %v", got)
	}
	if got := tm.Seconds(); got != 2.0 {
		t.Fatalf("Seconds: got %v", got)
	}
	if DurationOf(1.5) != 1500*Millisecond {
		t.Fatalf("DurationOf(1.5) = %v", DurationOf(1.5))
	}
}

func TestDurationScale(t *testing.T) {
	d := Second
	if got := d.Scale(2.5); got != 2500*Millisecond {
		t.Fatalf("Scale(2.5) = %v", got)
	}
	if got := d.Scale(-1); got != 0 {
		t.Fatalf("Scale(-1) = %v, want 0", got)
	}
	if got := Duration(math.MaxInt64 / 2).Scale(4); got != Duration(Forever) {
		t.Fatalf("overflow Scale = %v, want saturation", got)
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if d.Micros() != 1500 {
		t.Fatalf("Micros = %v", d.Micros())
	}
	if d.Millis() != 1.5 {
		t.Fatalf("Millis = %v", d.Millis())
	}
	if d.Seconds() != 0.0015 {
		t.Fatalf("Seconds = %v", d.Seconds())
	}
	if d.Std().Microseconds() != 1500 {
		t.Fatalf("Std = %v", d.Std())
	}
}
