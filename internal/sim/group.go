package sim

// EngineGroup owns one Engine per shard (or worker) of a parallel run. Each
// member is an independent clock: the sharded scheduler (internal/sched)
// gives every node-shard its own engine so shards advance one scheduling
// window concurrently. The group itself does no synchronization — each
// engine must still be driven by exactly one goroutine at a time; the
// group only allocates, hands out, and (via ResetAll) collectively resets
// the arenas for harnesses that reuse one group across back-to-back runs.
type EngineGroup struct {
	engines []*Engine
}

// NewEngineGroup returns a group of n fresh engines (n < 1 is treated as 1).
func NewEngineGroup(n int) *EngineGroup {
	if n < 1 {
		n = 1
	}
	g := &EngineGroup{engines: make([]*Engine, n)}
	for i := range g.engines {
		g.engines[i] = NewEngine()
	}
	return g
}

// Size returns the number of engines in the group.
func (g *EngineGroup) Size() int { return len(g.engines) }

// Engine returns member i.
func (g *EngineGroup) Engine(i int) *Engine { return g.engines[i] }

// ResetAll returns every member to t=0 with an empty queue, keeping their
// heap and slot arenas for reuse. Like Engine.Reset, this preserves
// determinism: a reset group behaves identically to a fresh one, so a run
// harness can reuse one group across back-to-back runs without perturbing
// results.
func (g *EngineGroup) ResetAll() {
	for _, e := range g.engines {
		e.Reset()
	}
}
