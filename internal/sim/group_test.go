package sim

import "testing"

func TestEngineGroupAllocatesIndependentClocks(t *testing.T) {
	g := NewEngineGroup(3)
	if g.Size() != 3 {
		t.Fatalf("size %d, want 3", g.Size())
	}
	for i := 0; i < g.Size(); i++ {
		for j := i + 1; j < g.Size(); j++ {
			if g.Engine(i) == g.Engine(j) {
				t.Fatalf("members %d and %d share an engine", i, j)
			}
		}
	}
	// Advancing one member leaves the others at t=0.
	fired := 0
	g.Engine(1).Schedule(5, func() { fired++ })
	g.Engine(1).Run(10)
	if fired != 1 || g.Engine(1).Now() != 10 {
		t.Fatalf("member 1: fired=%d now=%v", fired, g.Engine(1).Now())
	}
	if g.Engine(0).Now() != 0 || g.Engine(2).Now() != 0 {
		t.Fatal("idle members advanced")
	}
	if g := NewEngineGroup(0); g.Size() != 1 {
		t.Fatalf("degenerate group size %d, want 1", g.Size())
	}
}

func TestEngineGroupResetAllBehavesLikeFresh(t *testing.T) {
	run := func(e *Engine) []Time {
		var at []Time
		e.Schedule(3, func() { at = append(at, e.Now()) })
		e.Schedule(1, func() { at = append(at, e.Now()) })
		e.Run(Forever)
		return at
	}
	g := NewEngineGroup(2)
	first := run(g.Engine(0))
	g.ResetAll()
	if g.Engine(0).Now() != 0 || g.Engine(0).Pending() != 0 {
		t.Fatal("reset member not at a clean t=0")
	}
	second := run(g.Engine(0))
	if len(first) != len(second) {
		t.Fatalf("replay fired %d events, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay event %d at %v, want %v", i, second[i], first[i])
		}
	}
}

// TestMix64DecorrelatesCounterInputs pins the property episodeSeed (in
// internal/sched) relies on: structured (node, window)-style counter inputs
// map to distinct outputs, where the previous bare XOR of multiplied
// counters could collide across pairs.
func TestMix64DecorrelatesCounterInputs(t *testing.T) {
	const nodes, windows = 64, 128
	seen := make(map[uint64]struct{}, nodes*windows)
	for n := 0; n < nodes; n++ {
		for w := 0; w < windows; w++ {
			v := Mix64(uint64(n+1)*0x9e3779b97f4a7c15 + uint64(w+1)*0xbf58476d1ce4e5b9)
			if _, dup := seen[v]; dup {
				t.Fatalf("collision at node %d window %d", n, w)
			}
			seen[v] = struct{}{}
		}
	}
	// Avalanche sanity: small inputs land far apart. (Zero is the
	// finalizer's one fixed point; callers always offset their counters.)
	if Mix64(1) == 1 || Mix64(1) == Mix64(2) {
		t.Error("Mix64 barely mixes small inputs")
	}
}
