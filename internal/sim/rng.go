package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded through splitmix64). Every stochastic component of the
// simulator draws from its own RNG split off a root seed, so adding or
// removing one component never perturbs the random streams of the others.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Distinct seeds give
// independent-looking streams; the same seed always gives the same stream.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to expand the seed into four non-degenerate words.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a new independent generator from r, keyed by label. Use it to
// hand each simulated component its own stream.
func (r *RNG) Split(label uint64) *RNG {
	seed := r.Uint64() ^ (label * 0xd1342543de82ef95)
	return NewRNG(seed)
}

// Mix64 is the splitmix64 finalizer: a bijective avalanche over one word.
// Use it to derive component seeds from small structured inputs (node index,
// window number) where a bare XOR of multiplied counters can collide across
// input pairs and correlate the derived streams.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Exp returns an exponentially distributed value with the given mean.
// Used for Poisson inter-arrival times.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, via the Marsaglia polar method.
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns a log-normally distributed value whose underlying normal
// has parameters mu and sigma. The distribution's mean is exp(mu+sigma²/2);
// heavy right tails (large sigma) model the service-time skew of interactive
// cloud requests.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pareto returns a bounded Pareto sample with the given minimum and shape
// alpha. Smaller alpha yields heavier tails.
func (r *RNG) Pareto(xmin, alpha float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xmin / math.Pow(1-u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }
