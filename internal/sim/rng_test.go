package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/100 identical draws", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	mk := func() *RNG { return NewRNG(99).Split(5) }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	const mean = 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Norm stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(19)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(1.0, 0.5)
	}
	// Median of lognormal(mu, sigma) is exp(mu).
	below := 0
	want := math.Exp(1.0)
	for _, v := range vals {
		if v < want {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("lognormal median fraction = %v, want ~0.5", frac)
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(23)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto below xmin: %v", v)
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(31)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", vals)
	}
}
