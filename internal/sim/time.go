// Package sim provides the deterministic discrete-event simulation kernel
// that all Pliant substrates run on. It models virtual time as integer
// nanoseconds, schedules events on a binary heap, and supplies seeded,
// splittable pseudo-random number generators so every experiment is
// reproducible bit-for-bit.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Using an integer representation keeps event ordering exact and
// comparisons cheap.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is deliberately a
// distinct type from Time so that the compiler rejects accidental mixing of
// instants and spans.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Forever is a Time later than any time reachable in practice; Run(Forever)
// drains the event queue.
const Forever Time = 1<<63 - 1

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span between t and earlier instant u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("t=%.3fs", t.Seconds()) }

// Seconds reports the span as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports the span as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis reports the span as floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Std converts the span to a time.Duration for interoperability with code
// that formats or compares against wall-clock durations.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the span using time.Duration notation (1.5ms, 200µs, ...).
func (d Duration) String() string { return time.Duration(d).String() }

// DurationOf converts floating-point seconds to a Duration, rounding to the
// nearest nanosecond. It is the inverse of Duration.Seconds.
func DurationOf(seconds float64) Duration {
	return Duration(seconds*float64(Second) + 0.5)
}

// Scale multiplies the span by factor, saturating on overflow. Factors are
// clamped at zero: a negative scale would move events into the past.
func (d Duration) Scale(factor float64) Duration {
	if factor < 0 {
		factor = 0
	}
	scaled := float64(d) * factor
	if scaled >= float64(Forever) {
		return Duration(Forever)
	}
	return Duration(scaled + 0.5)
}
