// Package stats provides the measurement toolkit used across the Pliant
// reproduction: log-bucketed latency histograms with accurate high
// percentiles, streaming moment accumulators, five-number/violin summaries
// for the multi-colocation study (paper Fig. 7), and time-series recorders
// for the dynamic-behavior figures (paper Figs. 4 and 6).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-bucketed histogram in the spirit of HdrHistogram: values
// are bucketed with bounded relative error, so p99/p999 of heavy-tailed
// latency distributions stay accurate without storing every sample. The zero
// value is not usable; construct with NewHistogram.
type Histogram struct {
	min, max         float64 // representable range
	bucketsPerOctave int
	counts           []uint64
	total            uint64
	sum              float64
	observedMin      float64
	observedMax      float64
	underflow        uint64 // values below min are clamped into bucket 0 but counted here too
}

// NewHistogram returns a histogram covering [min, max] with the given number
// of buckets per powers-of-two octave. 32 buckets/octave keeps relative error
// under ~2.2%, plenty for tail-latency ratios.
func NewHistogram(min, max float64, bucketsPerOctave int) *Histogram {
	if min <= 0 || max <= min {
		panic("stats: histogram needs 0 < min < max")
	}
	if bucketsPerOctave <= 0 {
		panic("stats: histogram needs positive buckets per octave")
	}
	octaves := math.Log2(max / min)
	n := int(math.Ceil(octaves*float64(bucketsPerOctave))) + 1
	return &Histogram{
		min:              min,
		max:              max,
		bucketsPerOctave: bucketsPerOctave,
		counts:           make([]uint64, n),
		observedMin:      math.Inf(1),
		observedMax:      math.Inf(-1),
	}
}

// NewLatencyHistogram returns a histogram sized for end-to-end request
// latencies: 100 nanoseconds to 1000 seconds.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(100, 1e12, 32) // values in nanoseconds
}

func (h *Histogram) bucketIndex(v float64) int {
	if v < h.min {
		return 0
	}
	idx := int(math.Log2(v/h.min) * float64(h.bucketsPerOctave))
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	return idx
}

// bucketValue returns the representative (geometric midpoint) value of bucket i.
func (h *Histogram) bucketValue(i int) float64 {
	lo := h.min * math.Pow(2, float64(i)/float64(h.bucketsPerOctave))
	hi := h.min * math.Pow(2, float64(i+1)/float64(h.bucketsPerOctave))
	return math.Sqrt(lo * hi)
}

// Record adds one observation. Non-positive and NaN values are ignored:
// latencies and durations are strictly positive in this codebase, so such a
// value indicates a harmless sampling artifact rather than a datum.
func (h *Histogram) Record(v float64) {
	if math.IsNaN(v) || v <= 0 {
		return
	}
	if v < h.min {
		h.underflow++
	}
	h.counts[h.bucketIndex(v)]++
	h.total++
	h.sum += v
	if v < h.observedMin {
		h.observedMin = v
	}
	if v > h.observedMax {
		h.observedMax = v
	}
}

// RecordN adds n identical observations.
func (h *Histogram) RecordN(v float64, n uint64) {
	if math.IsNaN(v) || v <= 0 || n == 0 {
		return
	}
	if v < h.min {
		h.underflow += n
	}
	h.counts[h.bucketIndex(v)] += n
	h.total += n
	h.sum += v * float64(n)
	if v < h.observedMin {
		h.observedMin = v
	}
	if v > h.observedMax {
		h.observedMax = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of recorded observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the exact observed extrema (not bucket boundaries).
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.observedMin
}

// Max returns the exact observed maximum, or 0 if empty.
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.observedMax
}

// Quantile returns the value at quantile q in [0, 1]. Within a bucket the
// value is the bucket's geometric midpoint; the extreme quantiles return the
// exact observed extrema.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.observedMin
	}
	if q >= 1 {
		return h.observedMax
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			v := h.bucketValue(i)
			// Clamp to observed extrema so sparse histograms do not report
			// values outside the data.
			if v < h.observedMin {
				v = h.observedMin
			}
			if v > h.observedMax {
				v = h.observedMax
			}
			return v
		}
	}
	return h.observedMax
}

// P50, P95, P99, P999 are the common tail-latency quantiles.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 returns the 95th-percentile value.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 returns the 99th-percentile value — the QoS metric used throughout the
// paper.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// P999 returns the 99.9th-percentile value.
func (h *Histogram) P999() float64 { return h.Quantile(0.999) }

// Reset clears all recorded observations, retaining the configuration.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.underflow = 0
	h.observedMin = math.Inf(1)
	h.observedMax = math.Inf(-1)
}

// Merge adds all observations of other into h. The histograms must share a
// configuration.
func (h *Histogram) Merge(other *Histogram) error {
	if other.min != h.min || other.max != h.max || other.bucketsPerOctave != h.bucketsPerOctave {
		return fmt.Errorf("stats: merging incompatible histograms")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	h.underflow += other.underflow
	if other.total > 0 {
		if other.observedMin < h.observedMin {
			h.observedMin = other.observedMin
		}
		if other.observedMax > h.observedMax {
			h.observedMax = other.observedMax
		}
	}
	return nil
}

// Snapshot summarizes the histogram for reporting.
type Snapshot struct {
	Count          uint64
	Mean, Min, Max float64
	P50, P95, P99  float64
	P999           float64
}

// Snapshot captures the current distribution summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.P50(),
		P95:   h.P95(),
		P99:   h.P99(),
		P999:  h.P999(),
	}
}

// Quantiles computes exact quantiles of a small sample slice (the slice is
// copied, sorted, and interpolated linearly). Used where sample counts are
// modest and exactness matters more than memory.
func Quantiles(samples []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(samples) == 0 {
		return out
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
