// Package stats provides the measurement toolkit used across the Pliant
// reproduction: log-bucketed latency histograms with accurate high
// percentiles, streaming moment accumulators, five-number/violin summaries
// for the multi-colocation study (paper Fig. 7), and time-series recorders
// for the dynamic-behavior figures (paper Figs. 4 and 6).
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Histogram is a log-bucketed histogram in the spirit of HdrHistogram: values
// are bucketed with bounded relative error, so p99/p999 of heavy-tailed
// latency distributions stay accurate without storing every sample. The zero
// value is not usable; construct with NewHistogram.
type Histogram struct {
	min, max         float64 // representable range
	bucketsPerOctave int
	table            *bucketTable
	counts           []uint64
	total            uint64
	sum              float64
	observedMin      float64
	observedMax      float64
	underflow        uint64 // values below min are clamped into bucket 0 but counted here too
}

// bucketTable holds the precomputed bucket geometry of one histogram
// configuration: exact value-space bucket boundaries, representative values,
// and a per-binade index for bits-based bucket lookup. Tables are immutable
// and shared across all histograms with the same configuration, so the many
// short-lived episode histograms pay construction cost once per process.
//
// Boundaries replicate the truncation of the historical formula
// int(math.Log2(v/min) * bpo) bit for bit — bucket assignment, and therefore
// every exported quantile, is unchanged by the fast path.
type bucketTable struct {
	n int

	// thresholds[k] is the smallest value whose bucket index is k+1; bucket i
	// covers [thresholds[i-1], thresholds[i]).
	thresholds []float64

	// values[i] is bucket i's representative (geometric midpoint) value.
	values []float64

	// lut[j<<8|m] counts thresholds at or below the smallest value whose
	// IEEE-754 biased exponent is expLo+j and whose top 8 mantissa bits are
	// m. A lookup plus at most a step or two of forward scan resolves the
	// bucket (a 1/256-binade slice holds more than one threshold only above
	// 177 buckets/octave).
	lut      []int32
	nBinades int
	expLo    int // biased exponent of min's binade
}

// tableKey identifies a histogram configuration in the table cache.
type tableKey struct {
	min, max float64
	bpo      int
}

var tableCache sync.Map // tableKey -> *bucketTable

// tableFor returns the shared bucket table for a configuration, building it
// on first use.
func tableFor(min, max float64, bpo, n int) *bucketTable {
	key := tableKey{min: min, max: max, bpo: bpo}
	if t, ok := tableCache.Load(key); ok {
		return t.(*bucketTable)
	}
	t := buildTable(min, bpo, n)
	//pliant:allow sharedstate — sync.Map memo of immutable bucket tables; LoadOrStore is idempotent and every racer builds the same table
	actual, _ := tableCache.LoadOrStore(key, t)
	return actual.(*bucketTable)
}

// legacyIndex is the historical (unclamped) bucket formula the fast path must
// reproduce exactly.
func legacyIndex(v, min float64, bpo int) int {
	return int(math.Log2(v/min) * float64(bpo))
}

// buildTable computes exact bucket boundaries by locating, for each bucket
// transition, the smallest float64 the legacy formula maps past it. The
// analytic boundary min·2^(k/bpo) is correct to within a few ulps, so a short
// bits-space bisection around it pins the exact transition point.
func buildTable(min float64, bpo, n int) *bucketTable {
	t := &bucketTable{
		n:          n,
		thresholds: make([]float64, n-1),
		values:     make([]float64, n),
	}
	for i := 0; i < n; i++ {
		lo := min * math.Pow(2, float64(i)/float64(bpo))
		hi := min * math.Pow(2, float64(i+1)/float64(bpo))
		t.values[i] = math.Sqrt(lo * hi)
	}
	for k := 1; k < n; k++ {
		guess := min * math.Pow(2, float64(k)/float64(bpo))
		// Bracket the transition: lo has index < k, hi has index >= k.
		lo, hi := guess, guess
		for legacyIndex(lo, min, bpo) >= k {
			lo = math.Nextafter(lo/(1+1e-12), 0)
		}
		for legacyIndex(hi, min, bpo) < k {
			hi = math.Nextafter(hi*(1+1e-12), math.Inf(1))
		}
		// Bisect on the bit representation: for positive floats, bit order is
		// value order, so this converges to adjacent floats across the
		// transition.
		lb, hb := math.Float64bits(lo), math.Float64bits(hi)
		for lb+1 < hb {
			mb := lb + (hb-lb)/2
			if legacyIndex(math.Float64frombits(mb), min, bpo) < k {
				lb = mb
			} else {
				hb = mb
			}
		}
		t.thresholds[k-1] = math.Float64frombits(hb)
	}

	t.expLo = int(math.Float64bits(min) >> 52)
	expHi := int(math.Float64bits(t.thresholds[n-2]) >> 52)
	t.nBinades = expHi - t.expLo + 1
	t.lut = make([]int32, t.nBinades<<8)
	for j := 0; j < t.nBinades; j++ {
		for m := 0; m < 256; m++ {
			sliceStart := math.Float64frombits(uint64(t.expLo+j)<<52 | uint64(m)<<44)
			c := sort.SearchFloat64s(t.thresholds, sliceStart)
			if c < len(t.thresholds) && t.thresholds[c] == sliceStart {
				c++ // count thresholds <= sliceStart, not just <
			}
			t.lut[j<<8|m] = int32(c)
		}
	}
	return t
}

// index returns the bucket of v, which must satisfy v >= min. It is the
// bits-based equivalent of the legacy Log2 formula: the IEEE-754 exponent
// and top mantissa bits index a precomputed bucket count, and a bounded
// forward scan resolves values past thresholds inside the same slice.
func (t *bucketTable) index(v float64) int {
	bits := math.Float64bits(v)
	j := int(bits>>52) - t.expLo
	if j < 0 {
		return 0
	}
	if j >= t.nBinades {
		return t.n - 1
	}
	c := int(t.lut[j<<8|int(bits>>44&255)])
	for c < len(t.thresholds) && t.thresholds[c] <= v {
		c++
	}
	return c
}

// NewHistogram returns a histogram covering [min, max] with the given number
// of buckets per powers-of-two octave. 32 buckets/octave keeps relative error
// under ~2.2%, plenty for tail-latency ratios.
func NewHistogram(min, max float64, bucketsPerOctave int) *Histogram {
	if min <= 0 || max <= min {
		panic("stats: histogram needs 0 < min < max")
	}
	if bucketsPerOctave <= 0 {
		panic("stats: histogram needs positive buckets per octave")
	}
	octaves := math.Log2(max / min)
	n := int(math.Ceil(octaves*float64(bucketsPerOctave))) + 1
	return &Histogram{
		min:              min,
		max:              max,
		bucketsPerOctave: bucketsPerOctave,
		table:            tableFor(min, max, bucketsPerOctave, n),
		counts:           make([]uint64, n),
		observedMin:      math.Inf(1),
		observedMax:      math.Inf(-1),
	}
}

// NewLatencyHistogram returns a histogram sized for end-to-end request
// latencies: 100 nanoseconds to 1000 seconds.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(100, 1e12, 32) // values in nanoseconds
}

func (h *Histogram) bucketIndex(v float64) int {
	if v < h.min {
		return 0
	}
	return h.table.index(v)
}

// bucketValue returns the representative (geometric midpoint) value of bucket
// i, precomputed at table construction.
func (h *Histogram) bucketValue(i int) float64 { return h.table.values[i] }

// Record adds one observation. Non-positive and NaN values are ignored:
// latencies and durations are strictly positive in this codebase, so such a
// value indicates a harmless sampling artifact rather than a datum.
//
//pliant:hotpath
func (h *Histogram) Record(v float64) {
	if math.IsNaN(v) || v <= 0 {
		return
	}
	idx := 0
	if v >= h.min {
		idx = h.table.index(v)
	} else {
		h.underflow++
	}
	h.counts[idx]++
	h.total++
	h.sum += v
	if v < h.observedMin {
		h.observedMin = v
	}
	if v > h.observedMax {
		h.observedMax = v
	}
}

// RecordN adds n identical observations.
func (h *Histogram) RecordN(v float64, n uint64) {
	if math.IsNaN(v) || v <= 0 || n == 0 {
		return
	}
	if v < h.min {
		h.underflow += n
	}
	h.counts[h.bucketIndex(v)] += n
	h.total += n
	h.sum += v * float64(n)
	if v < h.observedMin {
		h.observedMin = v
	}
	if v > h.observedMax {
		h.observedMax = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of recorded observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the exact observed extrema (not bucket boundaries).
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.observedMin
}

// Max returns the exact observed maximum, or 0 if empty.
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.observedMax
}

// Quantile returns the value at quantile q in [0, 1]. Within a bucket the
// value is the bucket's geometric midpoint; the extreme quantiles return the
// exact observed extrema.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.observedMin
	}
	if q >= 1 {
		return h.observedMax
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			v := h.bucketValue(i)
			// Clamp to observed extrema so sparse histograms do not report
			// values outside the data.
			if v < h.observedMin {
				v = h.observedMin
			}
			if v > h.observedMax {
				v = h.observedMax
			}
			return v
		}
	}
	return h.observedMax
}

// P50, P95, P99, P999 are the common tail-latency quantiles.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 returns the 95th-percentile value.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 returns the 99th-percentile value — the QoS metric used throughout the
// paper.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// P999 returns the 99.9th-percentile value.
func (h *Histogram) P999() float64 { return h.Quantile(0.999) }

// Reset clears all recorded observations, retaining the configuration.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.underflow = 0
	h.observedMin = math.Inf(1)
	h.observedMax = math.Inf(-1)
}

// Merge adds all observations of other into h. The histograms must share a
// configuration.
func (h *Histogram) Merge(other *Histogram) error {
	if other.min != h.min || other.max != h.max || other.bucketsPerOctave != h.bucketsPerOctave {
		return fmt.Errorf("stats: merging incompatible histograms")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	h.underflow += other.underflow
	if other.total > 0 {
		if other.observedMin < h.observedMin {
			h.observedMin = other.observedMin
		}
		if other.observedMax > h.observedMax {
			h.observedMax = other.observedMax
		}
	}
	return nil
}

// Snapshot summarizes the histogram for reporting.
type Snapshot struct {
	Count          uint64
	Mean, Min, Max float64
	P50, P95, P99  float64
	P999           float64
}

// Snapshot captures the current distribution summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.P50(),
		P95:   h.P95(),
		P99:   h.P99(),
		P999:  h.P999(),
	}
}

// Quantiles computes exact quantiles of a small sample slice (the slice is
// copied, sorted, and interpolated linearly). Used where sample counts are
// modest and exactness matters more than memory.
func Quantiles(samples []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(samples) == 0 {
		return out
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
