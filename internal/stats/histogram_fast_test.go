package stats

import (
	"math"
	"math/rand"
	"testing"
)

// legacyBucketIndex is the pre-PR2 Log2-based formula, kept here as the
// reference the bits-based fast path must match exactly.
func legacyBucketIndex(h *Histogram, v float64) int {
	if v < h.min {
		return 0
	}
	idx := int(math.Log2(v/h.min) * float64(h.bucketsPerOctave))
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	return idx
}

func TestBucketIndexMatchesLegacyFormula(t *testing.T) {
	for _, cfg := range []struct {
		min, max float64
		bpo      int
	}{
		{100, 1e12, 32}, // NewLatencyHistogram
		{1, 1e6, 8},
		{0.125, 17.3, 5},
		{3.7, 9_000, 64},
	} {
		h := NewHistogram(cfg.min, cfg.max, cfg.bpo)
		rng := rand.New(rand.NewSource(1))
		logSpan := math.Log(cfg.max*4) - math.Log(cfg.min/4)
		for i := 0; i < 200_000; i++ {
			v := math.Exp(math.Log(cfg.min/4) + rng.Float64()*logSpan)
			if got, want := h.bucketIndex(v), legacyBucketIndex(h, v); got != want {
				t.Fatalf("cfg %+v: bucketIndex(%v) = %d, legacy %d", cfg, v, got, want)
			}
		}
		// Boundary-adjacent values are where truncation differences would
		// hide: probe every threshold and its neighboring floats.
		for _, th := range h.table.thresholds {
			for _, v := range []float64{
				math.Nextafter(th, 0), th, math.Nextafter(th, math.Inf(1)),
			} {
				if got, want := h.bucketIndex(v), legacyBucketIndex(h, v); got != want {
					t.Fatalf("cfg %+v: boundary bucketIndex(%v) = %d, legacy %d", cfg, v, got, want)
				}
			}
		}
		// Exact powers-of-two multiples of min and the range extremes.
		for _, v := range []float64{cfg.min, cfg.min * 2, cfg.min * 4, cfg.max, cfg.max * 2} {
			if got, want := h.bucketIndex(v), legacyBucketIndex(h, v); got != want {
				t.Fatalf("cfg %+v: bucketIndex(%v) = %d, legacy %d", cfg, v, got, want)
			}
		}
	}
}

func TestBucketValueMatchesLegacyFormula(t *testing.T) {
	h := NewLatencyHistogram()
	for i := range h.counts {
		lo := h.min * math.Pow(2, float64(i)/float64(h.bucketsPerOctave))
		hi := h.min * math.Pow(2, float64(i+1)/float64(h.bucketsPerOctave))
		want := math.Sqrt(lo * hi)
		if got := h.bucketValue(i); got != want {
			t.Fatalf("bucketValue(%d) = %v, legacy %v", i, got, want)
		}
	}
}

func TestTableSharedAcrossHistograms(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	if a.table != b.table {
		t.Fatal("same-config histograms do not share a bucket table")
	}
}

func TestRecordAllocFree(t *testing.T) {
	h := NewLatencyHistogram()
	v := 123456.7
	avg := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v = v*1.37 + 101
		if v > 1e12 {
			v = 150
		}
	})
	if avg != 0 {
		t.Fatalf("Record allocates %v allocs/op, want 0", avg)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = math.Exp(math.Log(100) + rng.Float64()*(math.Log(1e12)-math.Log(100)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(vals[i&4095])
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100_000; i++ {
		h.Record(math.Exp(math.Log(1e5) + rng.NormFloat64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.P99()
	}
}
