package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/approx-sched/pliant/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Record(1000)
	h.Record(2000)
	h.Record(3000)
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if got := h.Mean(); got != 2000 {
		t.Fatalf("Mean = %v, want 2000", got)
	}
	if h.Min() != 1000 || h.Max() != 3000 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramIgnoresBadValues(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(-5)
	h.Record(0)
	h.Record(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("bad values were recorded: count=%d", h.Count())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	rng := sim.NewRNG(1)
	var exact []float64
	for i := 0; i < 200000; i++ {
		// Lognormal latencies centered near 100us with a heavy tail.
		v := rng.LogNormal(math.Log(100_000), 0.6)
		exact = append(exact, v)
		h.Record(v)
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := exact[int(q*float64(len(exact)))]
		got := h.Quantile(q)
		relErr := math.Abs(got-want) / want
		if relErr > 0.05 {
			t.Errorf("q=%v: got %v want %v (rel err %.3f)", q, got, want, relErr)
		}
	}
}

func TestHistogramRecordN(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	for i := 0; i < 10; i++ {
		a.Record(5000)
	}
	b.RecordN(5000, 10)
	if a.Count() != b.Count() || a.Mean() != b.Mean() || a.P99() != b.P99() {
		t.Fatal("RecordN(v,10) differs from 10×Record(v)")
	}
	b.RecordN(100, 0)
	if b.Count() != 10 {
		t.Fatal("RecordN with n=0 recorded something")
	}
}

func TestHistogramClampsToObserved(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(777)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 777 {
			t.Fatalf("single-sample quantile(%v) = %v, want 777", q, got)
		}
	}
}

func TestHistogramUnderflowClamped(t *testing.T) {
	h := NewHistogram(1000, 1e9, 32)
	h.Record(1) // below min
	if h.Count() != 1 {
		t.Fatal("underflow value not counted")
	}
	if h.Quantile(0.5) != 1 {
		t.Fatalf("quantile should clamp to observed min, got %v", h.Quantile(0.5))
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(123456)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
	h.Record(1000)
	if h.Count() != 1 {
		t.Fatal("histogram unusable after Reset")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	rng := sim.NewRNG(2)
	all := NewLatencyHistogram()
	for i := 0; i < 5000; i++ {
		v := rng.LogNormal(math.Log(50_000), 0.4)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), all.Count())
	}
	if math.Abs(a.P99()-all.P99())/all.P99() > 1e-9 {
		t.Fatalf("merged P99 %v != %v", a.P99(), all.P99())
	}
	incompatible := NewHistogram(1, 10, 4)
	if err := a.Merge(incompatible); err == nil {
		t.Fatal("merging incompatible histograms did not error")
	}
}

func TestHistogramConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"min<=0":      func() { NewHistogram(0, 10, 8) },
		"max<=min":    func() { NewHistogram(10, 10, 8) },
		"zeroBuckets": func() { NewHistogram(1, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSnapshot(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(float64(i) * 1000)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("snapshot count %d", s.Count)
	}
	if s.Min != 1000 || s.Max != 100000 {
		t.Fatalf("snapshot extrema %v/%v", s.Min, s.Max)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.P999 {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
}

// Property: histogram quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64, raw []uint32) bool {
		h := NewLatencyHistogram()
		rng := sim.NewRNG(seed)
		n := len(raw)%500 + 10
		for i := 0; i < n; i++ {
			h.Record(rng.LogNormal(12, 1.0))
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExactQuantiles(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	qs := Quantiles(samples, 0, 0.5, 1)
	if qs[0] != 1 || qs[2] != 10 {
		t.Fatalf("extreme quantiles wrong: %v", qs)
	}
	if qs[1] != 5.5 {
		t.Fatalf("median = %v, want 5.5", qs[1])
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Fatalf("empty Quantiles = %v", got)
	}
}
