package stats

import (
	"math"
	"sort"
)

// Running accumulates streaming mean/variance/extrema (Welford's algorithm).
// It is the light-weight counterpart of Histogram for metrics where only
// moments are needed (execution times, inaccuracy percentages).
type Running struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (r *Running) Add(v float64) {
	if r.n == 0 {
		r.min, r.max = v, v
	} else {
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	r.n++
	delta := v - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (v - r.mean)
}

// N returns the number of observations.
func (r *Running) N() uint64 { return r.n }

// Mean returns the running mean, or 0 if empty.
func (r *Running) Mean() float64 { return r.mean }

// Var returns the sample variance, or 0 with fewer than two observations.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Stddev returns the sample standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation, or 0 if empty.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest observation, or 0 if empty.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// Violin is the summary behind one violin glyph in the paper's Fig. 7:
// extrema, quartiles, mean, and a fixed-bin density estimate of the sample.
type Violin struct {
	N       int
	Min     float64
	Q1      float64
	Median  float64
	Q3      float64
	Max     float64
	Mean    float64
	Density []float64 // normalized histogram over [Min, Max], sums to 1
}

// NewViolin summarizes samples with the given number of density bins.
func NewViolin(samples []float64, bins int) Violin {
	v := Violin{N: len(samples)}
	if len(samples) == 0 {
		return v
	}
	if bins <= 0 {
		bins = 16
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	v.Min = sorted[0]
	v.Max = sorted[len(sorted)-1]
	v.Q1 = quantileSorted(sorted, 0.25)
	v.Median = quantileSorted(sorted, 0.50)
	v.Q3 = quantileSorted(sorted, 0.75)
	sum := 0.0
	for _, s := range sorted {
		sum += s
	}
	v.Mean = sum / float64(len(sorted))

	v.Density = make([]float64, bins)
	span := v.Max - v.Min
	if span == 0 {
		v.Density[0] = 1
		return v
	}
	for _, s := range sorted {
		i := int((s - v.Min) / span * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		v.Density[i]++
	}
	for i := range v.Density {
		v.Density[i] /= float64(len(sorted))
	}
	return v
}

// IQR returns the interquartile range.
func (v Violin) IQR() float64 { return v.Q3 - v.Q1 }

// Spread reports max-min; the paper reads violin "centralization" (Fig. 7
// discussion) as the spread of inaccuracy tightening with more colocated
// apps.
func (v Violin) Spread() float64 { return v.Max - v.Min }

// Mean computes the arithmetic mean of samples, or 0 for an empty slice.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples))
}

// MaxOf returns the largest sample, or 0 for an empty slice.
func MaxOf(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	m := samples[0]
	for _, s := range samples[1:] {
		if s > m {
			m = s
		}
	}
	return m
}

// MinOf returns the smallest sample, or 0 for an empty slice.
func MinOf(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	m := samples[0]
	for _, s := range samples[1:] {
		if s < m {
			m = s
		}
	}
	return m
}
