package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/approx-sched/pliant/internal/sim"
)

func TestRunningMoments(t *testing.T) {
	var r Running
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		r.Add(v)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if r.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Sample variance of the classic dataset is 32/7.
	if math.Abs(r.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", r.Var(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("empty Running should report zeros")
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Var() != 0 {
		t.Fatalf("single-sample Var = %v, want 0", r.Var())
	}
	if r.Min() != 3.5 || r.Max() != 3.5 {
		t.Fatal("single-sample extrema wrong")
	}
}

// Property: Running matches a direct two-pass computation.
func TestRunningMatchesTwoPass(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 2
		rng := sim.NewRNG(seed)
		var r Running
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Norm(50, 20)
			r.Add(vals[i])
		}
		mean := Mean(vals)
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		wantVar := ss / float64(n-1)
		return math.Abs(r.Mean()-mean) < 1e-9 && math.Abs(r.Var()-wantVar) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestViolinSummary(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	v := NewViolin(samples, 4)
	if v.N != 12 {
		t.Fatalf("N = %d", v.N)
	}
	if v.Min != 1 || v.Max != 12 {
		t.Fatalf("extrema %v/%v", v.Min, v.Max)
	}
	if v.Median != 6.5 {
		t.Fatalf("median %v, want 6.5", v.Median)
	}
	if v.Q1 >= v.Median || v.Median >= v.Q3 {
		t.Fatalf("quartiles not ordered: %v %v %v", v.Q1, v.Median, v.Q3)
	}
	sum := 0.0
	for _, d := range v.Density {
		if d < 0 {
			t.Fatal("negative density")
		}
		sum += d
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("density sums to %v, want 1", sum)
	}
	if v.Spread() != 11 {
		t.Fatalf("Spread = %v", v.Spread())
	}
	if v.IQR() <= 0 {
		t.Fatalf("IQR = %v", v.IQR())
	}
}

func TestViolinDegenerate(t *testing.T) {
	if v := NewViolin(nil, 8); v.N != 0 {
		t.Fatal("empty violin not empty")
	}
	v := NewViolin([]float64{5, 5, 5}, 8)
	if v.Min != 5 || v.Max != 5 || v.Median != 5 {
		t.Fatal("constant violin summary wrong")
	}
	if v.Density[0] != 1 {
		t.Fatal("constant violin density should concentrate in bin 0")
	}
}

func TestViolinDefaultBins(t *testing.T) {
	v := NewViolin([]float64{1, 2, 3}, 0)
	if len(v.Density) != 16 {
		t.Fatalf("default bins = %d, want 16", len(v.Density))
	}
}

func TestSliceHelpers(t *testing.T) {
	s := []float64{3, 1, 4, 1, 5}
	if Mean(s) != 2.8 {
		t.Fatalf("Mean = %v", Mean(s))
	}
	if MaxOf(s) != 5 || MinOf(s) != 1 {
		t.Fatalf("MaxOf/MinOf = %v/%v", MaxOf(s), MinOf(s))
	}
	if Mean(nil) != 0 || MaxOf(nil) != 0 || MinOf(nil) != 0 {
		t.Fatal("empty-slice helpers should return 0")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(0, 10)
	s.Append(1, 20)
	s.Append(2, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Last().V != 5 {
		t.Fatalf("Last = %+v", s.Last())
	}
	if s.MaxV() != 20 {
		t.Fatalf("MaxV = %v", s.MaxV())
	}
	if math.Abs(s.MeanV()-35.0/3.0) > 1e-12 {
		t.Fatalf("MeanV = %v", s.MeanV())
	}
	if got := s.FractionAbove(9); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("FractionAbove = %v", got)
	}
	if s.At(0.5) != 10 || s.At(1.5) != 20 || s.At(-1) != 0 {
		t.Fatal("At step-function semantics wrong")
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	tr.Series("lat").Append(0, 1)
	tr.Series("cores").Append(0, 4)
	tr.Series("lat").Append(1, 2)
	names := tr.Names()
	if len(names) != 2 || names[0] != "lat" || names[1] != "cores" {
		t.Fatalf("Names = %v", names)
	}
	if tr.Series("lat").Len() != 2 {
		t.Fatal("series not shared across calls")
	}
	if !tr.Has("lat") || tr.Has("nope") {
		t.Fatal("Has misbehaves")
	}
}
