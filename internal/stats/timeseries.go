package stats

// Point is one (time, value) observation in a Series.
type Point struct {
	T float64 // seconds since scenario start
	V float64
}

// Series records a named metric over time — one line in the paper's dynamic
// behavior figures (tail latency, reclaimed cores, active variant index).
type Series struct {
	Name   string
	Points []Point
}

// Append records value v at time t (seconds).
func (s *Series) Append(t, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of recorded points.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the most recent point, or a zero Point if empty.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// At returns the value in effect at time t: the value of the latest point
// with T <= t, or 0 before the first point. Series values are treated as
// step functions, matching how controller decisions hold between intervals.
func (s *Series) At(t float64) float64 {
	v := 0.0
	for _, p := range s.Points {
		if p.T > t {
			break
		}
		v = p.V
	}
	return v
}

// Values returns just the values, in time order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// MaxV returns the maximum value in the series, or 0 if empty.
func (s *Series) MaxV() float64 { return MaxOf(s.Values()) }

// MeanV returns the mean value in the series, or 0 if empty.
func (s *Series) MeanV() float64 { return Mean(s.Values()) }

// FractionAbove reports the fraction of points whose value exceeds the
// threshold — used for "fraction of intervals in QoS violation" summaries.
func (s *Series) FractionAbove(threshold float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	n := 0
	for _, p := range s.Points {
		if p.V > threshold {
			n++
		}
	}
	return float64(n) / float64(len(s.Points))
}

// Trace is a bundle of named series recorded during one scenario run.
type Trace struct {
	series map[string]*Series
	order  []string
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{series: make(map[string]*Series)}
}

// Series returns the series with the given name, creating it on first use.
func (tr *Trace) Series(name string) *Series {
	s, ok := tr.series[name]
	if !ok {
		s = &Series{Name: name}
		tr.series[name] = s
		tr.order = append(tr.order, name)
	}
	return s
}

// Names returns series names in creation order.
func (tr *Trace) Names() []string {
	return append([]string(nil), tr.order...)
}

// Has reports whether a series with the given name exists.
func (tr *Trace) Has(name string) bool {
	_, ok := tr.series[name]
	return ok
}
