package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Azure VM-trace-style columns (the vmtable schema: one row per VM).
const (
	aVMID    = 0
	aCreated = 3 // seconds since trace start
	aDeleted = 4
	aCores   = 9  // core-count bucket: "1", "2", …, ">24"
	aMem     = 10 // memory bucket in GB: "1.75", …, ">64"
	aMinCols = 11
)

// Bucket ceilings the Azure schema tops out at; ">24" cores and ">64" GB rows
// normalize to 1.0.
const (
	azureMaxCores = 24.0
	azureMaxMemGB = 64.0
)

// ParseAzure reads VM-trace-style rows: one VM per row, arrival at the
// created timestamp, duration from created→deleted, resource shape from the
// core and memory buckets normalized against the schema's largest bucket.
// VMs with a missing or inverted deletion timestamp (still running when the
// trace was cut) get the mean observed lifetime (Trace.Defaulted counts
// them). A header row, if present, is skipped.
func ParseAzure(r io.Reader) (*Trace, error) {
	cr := newCSVReader(r)
	var jobs []Job
	rows, dropped := 0, 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: azure row %d: %w", rows+1, err)
		}
		rows++
		if rows == 1 && len(rec) > aCreated && looksLikeHeader(rec[aCreated]) {
			rows--
			continue
		}
		if len(rec) < aMinCols {
			dropped++
			continue
		}
		created, err1 := strconv.ParseFloat(rec[aCreated], 64)
		if err1 != nil || created < 0 || !isFinite(created) {
			dropped++
			continue
		}
		dur := -1.0
		if rec[aDeleted] != "" {
			deleted, err := strconv.ParseFloat(rec[aDeleted], 64)
			if err != nil || !isFinite(deleted) {
				dropped++
				continue
			}
			if deleted >= created {
				dur = deleted - created
			}
			// An inverted pair means the VM outlived the window; keep the
			// arrival, default the duration.
		}
		cores := parseBucket(rec[aCores], azureMaxCores)
		mem := parseBucket(rec[aMem], azureMaxMemGB)
		if cores < 0 || mem < 0 {
			dropped++
			continue
		}
		cause := CauseUnknown
		if dur >= 0 {
			// The vmtable schema records only a deletion instant, no reason:
			// a deleted VM reads as a normal completion.
			cause = CauseFinish
		}
		jobs = append(jobs, Job{
			// Clone: the CSV reader reuses its field buffer across rows.
			ID:          strings.Clone(rec[aVMID]),
			ArrivalSec:  created,
			DurationSec: dur,
			CPU:         cores,
			Mem:         mem,
			Cause:       cause,
		})
	}
	return finishTrace("azure", rows, dropped, jobs)
}

// parseBucket normalizes an Azure bucket column (">24"-style open top bucket,
// plain numbers otherwise) against the schema ceiling into [0, 1]; -1 flags a
// malformed cell.
func parseBucket(field string, ceiling float64) float64 {
	s := strings.TrimSpace(field)
	if strings.HasPrefix(s, ">") {
		return 1
	}
	if s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || !isFinite(v) || v < 0 {
		return -1
	}
	return clamp01(v / ceiling)
}
