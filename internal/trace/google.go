package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Google ClusterData-style task-event columns (the subset the ingester
// needs; real exports carry thirteen, and extra columns are ignored).
const (
	gTimestamp = 0 // microseconds since trace start
	gJobID     = 2
	gTaskIndex = 3
	gEventType = 5
	gCPUReq    = 9 // normalized fraction of a machine
	gMemReq    = 10
	gMinCols   = 11
)

// ClusterData task-event types. SUBMIT opens a task; FINISH (and the other
// terminal events — the task stopped running either way) closes it; the
// SCHEDULE and UPDATE events carry no arrival information.
const (
	gSubmit        = 0
	gSchedule      = 1
	gEvict         = 2
	gFail          = 3
	gFinish        = 4
	gKill          = 5
	gLost          = 6
	gUpdatePending = 7
	gUpdateRunning = 8
)

// Parse reads a trace in the given format. The reader is consumed
// streaming: memory stays proportional to the number of concurrently open
// tasks (Google) or emitted jobs, never to the file size.
func Parse(r io.Reader, f Format) (*Trace, error) {
	switch f {
	case Google:
		return ParseGoogle(r)
	case Azure:
		return ParseAzure(r)
	}
	return nil, fmt.Errorf("trace: unknown format %v", f)
}

// ParseGoogle reads ClusterData-style task events: SUBMIT rows open a task
// with its arrival instant and resource request; the task's first terminal
// event (FINISH, EVICT, FAIL, KILL, LOST) closes it and fixes its duration.
// Tasks with no terminal event by EOF get the mean observed duration
// (Trace.Defaulted counts them). A header row, if present, is skipped.
func ParseGoogle(r io.Reader) (*Trace, error) {
	type open struct {
		arrivalSec float64
		cpu, mem   float64
	}
	cr := newCSVReader(r)
	pending := map[string]open{}
	// order records SUBMIT file order: tasks still open at EOF must emit in
	// a deterministic order (map iteration would scramble equal-instant
	// orphans run to run), and file order is what finishTrace's stable sort
	// promises to preserve among equal arrivals.
	var order []string
	var jobs []Job
	rows, dropped := 0, 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: google row %d: %w", rows+1, err)
		}
		rows++
		if rows == 1 && looksLikeHeader(rec[gTimestamp]) {
			rows--
			continue
		}
		if len(rec) < gMinCols {
			dropped++
			continue
		}
		ts, err1 := strconv.ParseFloat(rec[gTimestamp], 64)
		event, err2 := strconv.Atoi(rec[gEventType])
		if err1 != nil || err2 != nil || ts < 0 || !isFinite(ts) {
			dropped++
			continue
		}
		key := rec[gJobID] + "/" + rec[gTaskIndex]
		sec := ts / 1e6
		switch event {
		case gSubmit:
			cpu := parseFraction(rec[gCPUReq])
			mem := parseFraction(rec[gMemReq])
			if math.IsNaN(cpu) || math.IsNaN(mem) {
				dropped++
				continue
			}
			if _, ok := pending[key]; !ok {
				order = append(order, key)
			}
			pending[key] = open{arrivalSec: sec, cpu: cpu, mem: mem}
		case gFinish, gEvict, gFail, gKill, gLost:
			o, ok := pending[key]
			if !ok {
				// Terminal event for a task whose SUBMIT predates the trace
				// window — nothing to anchor an arrival to.
				dropped++
				continue
			}
			delete(pending, key)
			dur := sec - o.arrivalSec
			if dur < 0 {
				dropped++
				continue
			}
			jobs = append(jobs, Job{
				ID:          key,
				ArrivalSec:  o.arrivalSec,
				DurationSec: dur,
				CPU:         clamp01(o.cpu),
				Mem:         clamp01(o.mem),
				Cause:       causeOfEvent(event),
			})
		case gSchedule, gUpdatePending, gUpdateRunning:
			// Placement and update events carry no new information for
			// arrival replay — well-formed rows, not validation rejects.
		default:
			dropped++
		}
	}
	// Tasks still open at EOF arrived but never terminated inside the
	// window: keep them with an unknown duration for finishTrace to
	// default, in SUBMIT file order.
	for _, key := range order {
		o, ok := pending[key]
		if !ok {
			continue // closed (possibly resubmitted and closed again)
		}
		delete(pending, key)
		jobs = append(jobs, Job{
			ID:          key,
			ArrivalSec:  o.arrivalSec,
			DurationSec: -1,
			CPU:         clamp01(o.cpu),
			Mem:         clamp01(o.mem),
		})
	}
	return finishTrace("google", rows, dropped, jobs)
}

// causeOfEvent maps a ClusterData terminal event type to its Cause. The
// per-cause identity used to be collapsed here (every terminal meant "the
// task stopped"); preserving it lets fault injection replay a trace's real
// failure mix (fault.FromTrace, pliant-sched -trace-faults).
func causeOfEvent(event int) Cause {
	switch event {
	case gFinish:
		return CauseFinish
	case gEvict:
		return CauseEvict
	case gFail:
		return CauseFail
	case gKill:
		return CauseKill
	case gLost:
		return CauseLost
	}
	return CauseUnknown
}

// newCSVReader configures the shared reader: variable-width rows (real
// exports differ in trailing columns) and no quote pedantry.
func newCSVReader(r io.Reader) *csv.Reader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	cr.LazyQuotes = true
	return cr
}

// looksLikeHeader reports whether a first-column value is non-numeric — both
// schemas are numeric in column 0 (timestamp, or the Azure vmid hash which
// some exports emit as a header label).
func looksLikeHeader(field string) bool {
	_, err := strconv.ParseFloat(field, 64)
	return err != nil
}

// parseFraction reads a normalized resource column: empty cells (redacted in
// real exports) mean zero, anything unparsable or non-finite is NaN so the
// caller drops the row.
func parseFraction(field string) float64 {
	if field == "" {
		return 0
	}
	v, err := strconv.ParseFloat(field, 64)
	if err != nil || !isFinite(v) {
		return math.NaN()
	}
	return v
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
