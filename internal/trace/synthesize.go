package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/approx-sched/pliant/internal/sim"
)

// SynthConfig tunes Synthesize. The zero value (plus a Format) produces a
// one-hour, 200-job trace at seed 1.
type SynthConfig struct {
	Format Format
	// Jobs is how many jobs (tasks/VMs) to generate (default 200).
	Jobs int
	// SpanSec is the span the arrivals cover (default 3600).
	SpanSec float64
	// Seed drives all randomness; equal configs emit identical bytes.
	Seed uint64
	// Orphans is the fraction of Google tasks whose terminal event is
	// withheld — the trace-was-cut case every real export exhibits (default
	// 0.05, negative for none; for Azure the deletion column goes missing
	// instead).
	Orphans float64
	// FailureFrac is the fraction of terminated Google tasks whose terminal
	// event is failure-shaped instead of FINISH, cycled over
	// EVICT/FAIL/KILL/LOST (default 0: all terminals FINISH, drawing no
	// randomness, so pre-existing fixtures stay byte-identical). Azure rows
	// have no cause column; the knob is ignored there.
	FailureFrac float64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Jobs <= 0 {
		c.Jobs = 200
	}
	if c.SpanSec == 0 {
		c.SpanSec = 3600
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Orphans == 0 {
		c.Orphans = 0.05
	}
	if c.Orphans < 0 {
		c.Orphans = 0
	}
	if c.FailureFrac < 0 {
		c.FailureFrac = 0
	}
	return c
}

// synthJob is one generated job before formatting.
type synthJob struct {
	arrivalSec  float64
	durationSec float64
	cpu, mem    float64
	orphan      bool
	term        int // Google terminal event type (gFinish unless failed)
}

// synthesizeJobs draws the arrival process every format shares: Pareto
// (heavy-tailed) inter-arrival gaps modulated by a diurnal curve with a flash
// burst at 60% of the span — bursty, correlated arrivals of the kind
// production traces exhibit and synthetic Poisson streams cannot produce.
// Resource shape correlates with duration: long jobs request more of the
// machine, as cluster studies consistently report.
func synthesizeJobs(c SynthConfig) []synthJob {
	rng := sim.NewRNG(c.Seed)
	meanGap := c.SpanSec / float64(c.Jobs)
	jobs := make([]synthJob, 0, c.Jobs)
	t := 0.0
	for i := 0; i < c.Jobs; i++ {
		// The day clock is the job-index fraction: diurnal modulation (±50%
		// around 1) plus a 6× flash burst over the 60–68% stretch.
		frac := float64(i) / float64(c.Jobs)
		rate := 1 + 0.5*sinApprox(frac)
		if frac >= 0.6 && frac < 0.68 {
			rate *= 6
		}
		gap := rng.Pareto(meanGap/3, 1.8) / rate
		if gap > 20*meanGap {
			gap = 20 * meanGap // bound the tail so the span stays plannable
		}
		dur := rng.LogNormal(0, 1) * c.SpanSec / 20
		cpuBase := dur / (c.SpanSec / 4)
		if cpuBase > 1 {
			cpuBase = 1
		}
		sj := synthJob{
			arrivalSec:  t,
			durationSec: dur,
			cpu:         clamp01(0.1 + 0.6*cpuBase + 0.3*rng.Float64()),
			mem:         clamp01(0.05 + 0.5*cpuBase + 0.3*rng.Float64()),
			orphan:      rng.Bernoulli(c.Orphans),
			term:        gFinish,
		}
		// Failure causes are opt-in and draw from the stream only when a
		// format that can express them has them enabled, so FailureFrac == 0
		// reproduces pre-existing fixtures byte-for-byte and the knob leaves
		// Azure fixtures (no cause column) untouched.
		if c.Format == Google && c.FailureFrac > 0 && rng.Bernoulli(c.FailureFrac) {
			switch i % 4 {
			case 0:
				sj.term = gEvict
			case 1:
				sj.term = gFail
			case 2:
				sj.term = gKill
			default:
				sj.term = gLost
			}
		}
		jobs = append(jobs, sj)
		t += gap
	}
	// Rescale so the last arrival lands exactly on the configured span:
	// heavy-tailed gaps make the raw sum land wherever the tail says, but a
	// fixture's span should be the span its config names.
	if last := jobs[len(jobs)-1].arrivalSec; last > 0 {
		scale := c.SpanSec / last
		for i := range jobs {
			jobs[i].arrivalSec *= scale
		}
	}
	return jobs
}

// sinApprox is a cheap odd-harmonic day curve over frac ∈ [0, 1): a parabola
// pair approximating sin(2π·frac) closely enough for load shaping without
// pulling math.Sin into the fixture-determinism surface.
func sinApprox(frac float64) float64 {
	frac -= float64(int(frac))
	if frac < 0.5 {
		x := frac * 2
		return 4 * x * (1 - x)
	}
	x := (frac - 0.5) * 2
	return -4 * x * (1 - x)
}

// Synthesize emits a schema-exact CSV fixture for the given format: the same
// columns, ordering quirks, and redactions a real export carries, at a size
// tests can commit. The bytes are a pure function of the config, so fixtures
// regenerate reproducibly and goldens can pin them.
func Synthesize(c SynthConfig) []byte {
	c = c.withDefaults()
	jobs := synthesizeJobs(c)
	switch c.Format {
	case Azure:
		return formatAzure(jobs)
	default:
		return formatGoogle(jobs)
	}
}

// formatGoogle renders task events: a SUBMIT and (unless orphaned) a FINISH
// per task, globally sorted by timestamp as real exports are, with the full
// thirteen columns and empty cells where ClusterData redacts.
func formatGoogle(jobs []synthJob) []byte {
	type event struct {
		usec  int64
		seq   int
		etype int
		job   int
	}
	var events []event
	for i, j := range jobs {
		events = append(events, event{usec: int64(j.arrivalSec * 1e6), seq: len(events), etype: gSubmit, job: i})
		if !j.orphan {
			end := int64((j.arrivalSec + j.durationSec) * 1e6)
			events = append(events, event{usec: end, seq: len(events), etype: j.term, job: i})
		}
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].usec != events[b].usec {
			return events[a].usec < events[b].usec
		}
		return events[a].seq < events[b].seq
	})
	var b strings.Builder
	for _, e := range events {
		j := jobs[e.job]
		// timestamp, missing-info, job id, task index, machine id, event
		// type, user, scheduling class, priority, cpu request, memory
		// request, disk request, different-machines constraint.
		fmt.Fprintf(&b, "%d,,%d,%d,%d,%d,user_%d,%d,%d,%.4f,%.4f,%.6f,0\n",
			e.usec, 6250000000+e.job, e.job%4, 4155527081+e.job, e.etype,
			e.job%37, e.job%4, e.job%12, j.cpu, j.mem, j.mem/16)
	}
	return []byte(b.String())
}

// formatAzure renders one VM per row in the vmtable column order, with bucket
// columns quantized the way the public dataset publishes them and orphaned
// VMs carrying an empty deletion cell.
func formatAzure(jobs []synthJob) []byte {
	coreBuckets := []float64{1, 2, 4, 8, 12, 24}
	memBuckets := []float64{1.75, 3.5, 7, 14, 32, 64}
	var b strings.Builder
	for i, j := range jobs {
		deleted := ""
		if !j.orphan {
			deleted = fmt.Sprintf("%d", int64(j.arrivalSec+j.durationSec))
		}
		cores := quantize(j.cpu*azureMaxCores, coreBuckets)
		mem := quantize(j.mem*azureMaxMemGB, memBuckets)
		// vmid, subscription id, deployment id, created, deleted, max cpu,
		// avg cpu, p95 max cpu, category, core bucket, memory bucket.
		fmt.Fprintf(&b, "vm_%08d,sub_%d,dep_%d,%d,%s,%.2f,%.2f,%.2f,%s,%s,%s\n",
			i, i%23, i%101, int64(j.arrivalSec), deleted,
			100*j.cpu, 60*j.cpu, 90*j.cpu, categoryOf(i), cores, mem)
	}
	return []byte(b.String())
}

// quantize snaps a value to the smallest bucket holding it; values above the
// top bucket render as the open ">top" bucket, exactly as the dataset does.
func quantize(v float64, buckets []float64) string {
	for _, b := range buckets {
		if v <= b {
			return trimFloat(b)
		}
	}
	return ">" + trimFloat(buckets[len(buckets)-1])
}

// trimFloat renders bucket labels the way the dataset spells them (integral
// buckets without a decimal point).
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func categoryOf(i int) string {
	switch i % 3 {
	case 0:
		return "Delay-insensitive"
	case 1:
		return "Interactive"
	}
	return "Unknown"
}
