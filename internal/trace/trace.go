// Package trace ingests production cluster traces — the arrival processes
// Pliant's headline claims should be judged on. Synthetic Poisson and diurnal
// streams (internal/workload) are smooth by construction; real colocation
// traces are bursty, heavy-tailed, and correlated across jobs, which is
// exactly the regime where telemetry-fed placement and approximation-for-watts
// earn (or lose) their keep.
//
// Two dominant public schemas parse into one canonical Job stream:
//
//   - Google ClusterData-style task events: one CSV row per task event
//     (timestamp, job ID, task index, event type, CPU/memory request), with a
//     task's duration recovered by pairing its SUBMIT with its terminal event.
//   - Azure VM-trace-style rows: one CSV row per VM (created/deleted
//     timestamps, core and memory buckets).
//
// Parsing is streaming (constant memory beyond the open-task map), every row
// is validated, and Normalize rebases, rescales, and deterministically
// down-samples the stream so a multi-day production trace compresses into a
// simulated day. Synthesize emits schema-exact fixtures for both formats, so
// tests and benchmarks exercise the real parse path without shipping
// gigabytes of trace data.
package trace

import (
	"fmt"
	"math"
	"sort"
)

// Format selects one of the supported trace schemas.
type Format int

const (
	// Google is the ClusterData-style task-event schema.
	Google Format = iota
	// Azure is the VM-trace-style per-VM schema.
	Azure
)

// String names the format as the CLI spells it.
func (f Format) String() string {
	switch f {
	case Google:
		return "google"
	case Azure:
		return "azure"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// FormatByName resolves a CLI spelling to a Format.
func FormatByName(name string) (Format, error) {
	switch name {
	case "google":
		return Google, nil
	case "azure":
		return Azure, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q (google, azure)", name)
}

// Cause is a job's terminal cause — why the trace says it stopped running.
// The values mirror the Google ClusterData terminal event types; Azure rows
// carry only a deletion timestamp, so deleted VMs report CauseFinish.
type Cause uint8

// The terminal causes. The zero value is CauseUnknown so jobs whose terminal
// event never appears in the window (orphans) need no special-casing.
const (
	// CauseUnknown marks a job with no terminal event inside the trace
	// window (its duration was defaulted; see Trace.Defaulted).
	CauseUnknown Cause = iota
	// CauseFinish is a normal completion.
	CauseFinish
	// CauseEvict, CauseFail, CauseKill, and CauseLost are the failure-shaped
	// terminals: descheduled for a higher-priority tenant or a machine loss,
	// task error, user/driver kill, and record loss respectively.
	CauseEvict
	CauseFail
	CauseKill
	CauseLost
)

// String names the cause as the source schemas spell it.
func (c Cause) String() string {
	switch c {
	case CauseUnknown:
		return "unknown"
	case CauseFinish:
		return "finish"
	case CauseEvict:
		return "evict"
	case CauseFail:
		return "fail"
	case CauseKill:
		return "kill"
	case CauseLost:
		return "lost"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// Failure reports whether the cause is failure-shaped — the job stopped for
// a reason other than finishing its work.
func (c Cause) Failure() bool {
	switch c {
	case CauseEvict, CauseFail, CauseKill, CauseLost:
		return true
	}
	return false
}

// CauseCounts is the per-cause census of a trace's jobs.
type CauseCounts struct {
	Finish  int
	Evict   int
	Fail    int
	Kill    int
	Lost    int
	Unknown int
}

// Terminated counts jobs whose terminal event appeared in the window.
func (c CauseCounts) Terminated() int {
	return c.Finish + c.Evict + c.Fail + c.Kill + c.Lost
}

// Failures counts the failure-shaped terminals.
func (c CauseCounts) Failures() int {
	return c.Evict + c.Fail + c.Kill + c.Lost
}

// countCauses censuses a job list.
func countCauses(jobs []Job) CauseCounts {
	var c CauseCounts
	for _, j := range jobs {
		switch j.Cause {
		case CauseFinish:
			c.Finish++
		case CauseEvict:
			c.Evict++
		case CauseFail:
			c.Fail++
		case CauseKill:
			c.Kill++
		case CauseLost:
			c.Lost++
		default:
			c.Unknown++
		}
	}
	return c
}

// Job is one normalized trace row: a unit of batch work arriving at a
// cluster, whatever the source schema called it (task, VM).
type Job struct {
	// ID is the source identifier (job/task pair, VM id), kept for
	// provenance; the scheduler keys jobs by arrival order.
	ID string
	// ArrivalSec is the arrival instant, rebased so the first arrival of the
	// trace is 0.
	ArrivalSec float64
	// DurationSec is the observed (or requested) runtime. Rows whose end
	// never appears in the trace carry the mean duration of the rows that do
	// (see Trace.Defaulted).
	DurationSec float64
	// CPU and Mem are the normalized resource requests in [0, 1] — fractions
	// of a machine, as both source schemas express them.
	CPU float64
	Mem float64
	// Cause is the job's terminal cause (CauseUnknown when the terminal
	// event never appeared in the trace window).
	Cause Cause
}

// Trace is a parsed, validated, arrival-ordered job stream.
type Trace struct {
	// Source names the schema the trace was parsed from ("google", "azure",
	// "synthetic").
	Source string
	// Rows counts the raw data rows consumed (events for Google, VMs for
	// Azure), before pairing and validation.
	Rows int
	// Dropped counts rows rejected by validation (non-finite fields,
	// negative instants, malformed columns).
	Dropped int
	// Defaulted counts jobs whose duration never appeared in the trace and
	// was filled with the mean observed duration.
	Defaulted int
	// Causes censuses the jobs' terminal causes — the raw material of
	// trace-derived fault injection (internal/fault.FromTrace).
	Causes CauseCounts
	// Jobs is the normalized stream, ascending in ArrivalSec.
	Jobs []Job
}

// FailureFrac is the fraction of terminated jobs whose terminal cause was
// failure-shaped (EVICT/FAIL/KILL/LOST); 0 when no job terminated inside the
// window.
func (t *Trace) FailureFrac() float64 {
	if term := t.Causes.Terminated(); term > 0 {
		return float64(t.Causes.Failures()) / float64(term)
	}
	return 0
}

// SpanSec is the time between the first and last arrival.
func (t *Trace) SpanSec() float64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	return t.Jobs[len(t.Jobs)-1].ArrivalSec - t.Jobs[0].ArrivalSec
}

// MeanRate is the mean arrival rate in jobs/second over the span (the job
// count if the span is degenerate).
func (t *Trace) MeanRate() float64 {
	span := t.SpanSec()
	if span <= 0 {
		return float64(len(t.Jobs))
	}
	return float64(len(t.Jobs)) / span
}

// ArrivalTimes returns the arrival instants in order — the input to
// workload.NewTraceStream.
func (t *Trace) ArrivalTimes() []float64 {
	out := make([]float64, len(t.Jobs))
	for i, j := range t.Jobs {
		out[i] = j.ArrivalSec
	}
	return out
}

// RateShape bins the arrival process into a step function of load multipliers
// normalized around 1 — the trace's burstiness as a workload.Replay shape, so
// node services can ride the same demand curve the job stream follows. Empty
// bins floor at a small positive multiplier (replay shapes must stay
// positive). At least one bin and two jobs are required.
func (t *Trace) RateShape(bins int) (timesSec, mult []float64, err error) {
	if bins < 1 {
		return nil, nil, fmt.Errorf("trace: rate shape needs at least one bin, got %d", bins)
	}
	span := t.SpanSec()
	if len(t.Jobs) < 2 || span <= 0 {
		return nil, nil, fmt.Errorf("trace: rate shape needs a trace with a positive span (%d jobs over %.0fs)",
			len(t.Jobs), span)
	}
	t0 := t.Jobs[0].ArrivalSec
	counts := make([]float64, bins)
	for _, j := range t.Jobs {
		k := int((j.ArrivalSec - t0) / span * float64(bins))
		if k >= bins {
			k = bins - 1 // the last arrival lands exactly on the span edge
		}
		counts[k]++
	}
	mean := float64(len(t.Jobs)) / float64(bins)
	timesSec = make([]float64, bins)
	mult = make([]float64, bins)
	for k := range counts {
		timesSec[k] = float64(k) * span / float64(bins)
		m := counts[k] / mean
		if m < 0.01 {
			m = 0.01
		}
		mult[k] = m
	}
	return timesSec, mult, nil
}

// Options tunes Normalize. The zero value keeps the trace as parsed.
type Options struct {
	// RateScale compresses the time axis by this factor: arrivals land
	// RateScale times faster (and the span shrinks accordingly). 0 or 1
	// keeps the original axis.
	RateScale float64
	// TargetSpanSec rescales the time axis so the last arrival lands at this
	// span — the "compress a multi-day trace into a simulated day" knob,
	// applied after RateScale. 0 keeps the (possibly rate-scaled) span.
	TargetSpanSec float64
	// DurationScale multiplies every job duration. 0 means 1.
	DurationScale float64
	// MaxJobs down-samples the stream to at most this many jobs by
	// deterministic systematic (stride) sampling over the arrival order,
	// preserving the temporal shape — bursts stay bursts. 0 keeps all jobs.
	MaxJobs int
}

// Normalize returns a new trace with the options applied: down-sample,
// rebase to t=0, scale the time axis, scale durations. The receiver is not
// mutated, so one parsed trace can normalize into several studies.
func (t *Trace) Normalize(o Options) (*Trace, error) {
	if len(t.Jobs) == 0 {
		return nil, fmt.Errorf("trace: cannot normalize an empty trace")
	}
	switch {
	case o.RateScale < 0 || math.IsNaN(o.RateScale):
		return nil, fmt.Errorf("trace: rate scale %v must be non-negative", o.RateScale)
	case o.TargetSpanSec < 0 || math.IsNaN(o.TargetSpanSec):
		return nil, fmt.Errorf("trace: target span %v must be non-negative", o.TargetSpanSec)
	case o.DurationScale < 0 || math.IsNaN(o.DurationScale):
		return nil, fmt.Errorf("trace: duration scale %v must be non-negative", o.DurationScale)
	case o.MaxJobs < 0:
		return nil, fmt.Errorf("trace: max jobs %d must be non-negative", o.MaxJobs)
	}

	jobs := t.Jobs
	if o.MaxJobs > 0 && o.MaxJobs < len(jobs) {
		// Systematic sampling: the k-th kept job is the floor(k·n/keep)-th of
		// the stream. Deterministic, order-preserving, and uniform in time
		// density, so the sampled stream keeps the original's shape.
		n := len(jobs)
		kept := make([]Job, o.MaxJobs)
		for k := range kept {
			kept[k] = jobs[k*n/o.MaxJobs]
		}
		jobs = kept
	} else {
		jobs = append([]Job(nil), jobs...)
	}

	timeScale := 1.0
	if o.RateScale > 0 {
		timeScale /= o.RateScale
	}
	if o.TargetSpanSec > 0 {
		span := (jobs[len(jobs)-1].ArrivalSec - jobs[0].ArrivalSec) * timeScale
		if span > 0 {
			timeScale *= o.TargetSpanSec / span
		}
	}
	durScale := o.DurationScale
	if durScale == 0 {
		durScale = 1
	}
	t0 := jobs[0].ArrivalSec
	for i := range jobs {
		jobs[i].ArrivalSec = (jobs[i].ArrivalSec - t0) * timeScale
		jobs[i].DurationSec *= durScale
	}
	return &Trace{
		Source:    t.Source,
		Rows:      t.Rows,
		Dropped:   t.Dropped,
		Defaulted: t.Defaulted,
		Causes:    countCauses(jobs), // recensus: sampling changes the mix
		Jobs:      jobs,
	}, nil
}

// finishTrace sorts, rebases, and duration-defaults a parsed job list — the
// shared tail of both parsers.
func finishTrace(source string, rows, dropped int, jobs []Job) (*Trace, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("trace: %s trace contained no usable jobs (%d rows, %d dropped)",
			source, rows, dropped)
	}
	// Stable sort by arrival: real exports are usually time-ordered already,
	// but pairing SUBMIT/FINISH events can emit jobs out of order, and equal
	// instants must keep their file order for determinism.
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].ArrivalSec < jobs[b].ArrivalSec })

	// Fill unknown durations (terminal event never appeared — the trace was
	// cut, or the task outlived it) with the mean observed duration, so the
	// stream stays usable without inventing a distribution.
	sum, known := 0.0, 0
	for _, j := range jobs {
		if j.DurationSec >= 0 {
			sum += j.DurationSec
			known++
		}
	}
	mean := 1.0
	if known > 0 {
		mean = sum / float64(known)
	}
	defaulted := 0
	for i := range jobs {
		if jobs[i].DurationSec < 0 {
			jobs[i].DurationSec = mean
			defaulted++
		}
	}
	t0 := jobs[0].ArrivalSec
	for i := range jobs {
		jobs[i].ArrivalSec -= t0
	}
	return &Trace{
		Source:    source,
		Rows:      rows,
		Dropped:   dropped,
		Defaulted: defaulted,
		Causes:    countCauses(jobs),
		Jobs:      jobs,
	}, nil
}

// clamp01 clamps a normalized resource request into [0, 1]; callers have
// already rejected non-finite values.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
