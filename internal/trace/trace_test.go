package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureConfigs pins the committed testdata fixtures: regenerate with
//
//	PLIANT_FIXTURES=write go test ./internal/trace/
//
// after an intentional Synthesize change.
var fixtureConfigs = []struct {
	file string
	cfg  SynthConfig
}{
	{"google_tasks.csv", SynthConfig{Format: Google, Jobs: 40, SpanSec: 600, Seed: 11, Orphans: 0.15}},
	{"azure_vms.csv", SynthConfig{Format: Azure, Jobs: 40, SpanSec: 600, Seed: 13, Orphans: 0.15}},
}

// TestFixturesMatchSynthesize pins the committed fixtures to the generator:
// schema-exact bytes are a pure function of the config, so drift in either
// the generator or the files fails here first.
func TestFixturesMatchSynthesize(t *testing.T) {
	for _, f := range fixtureConfigs {
		path := filepath.Join("testdata", f.file)
		want := Synthesize(f.cfg)
		if os.Getenv("PLIANT_FIXTURES") == "write" {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", path, len(want))
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: committed fixture differs from Synthesize output", f.file)
		}
	}
}

// TestFixturesParseThroughCommonPath is the schema-unification check: both
// committed fixtures parse into the same canonical Job stream with the same
// invariants — rebased ascending arrivals, normalized resources, defaulted
// durations counted.
func TestFixturesParseThroughCommonPath(t *testing.T) {
	for _, f := range fixtureConfigs {
		data, err := os.ReadFile(filepath.Join("testdata", f.file))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Parse(bytes.NewReader(data), f.cfg.Format)
		if err != nil {
			t.Fatalf("%s: %v", f.file, err)
		}
		if tr.Source != f.cfg.Format.String() {
			t.Errorf("%s: source %q", f.file, tr.Source)
		}
		if len(tr.Jobs) != f.cfg.Jobs {
			t.Errorf("%s: %d jobs, want %d", f.file, len(tr.Jobs), f.cfg.Jobs)
		}
		if tr.Defaulted == 0 {
			t.Errorf("%s: expected orphaned rows to default durations", f.file)
		}
		if tr.Jobs[0].ArrivalSec != 0 {
			t.Errorf("%s: first arrival %v, want rebased 0", f.file, tr.Jobs[0].ArrivalSec)
		}
		for i, j := range tr.Jobs {
			if i > 0 && j.ArrivalSec < tr.Jobs[i-1].ArrivalSec {
				t.Fatalf("%s: arrivals not ascending at %d", f.file, i)
			}
			if j.DurationSec < 0 || j.CPU < 0 || j.CPU > 1 || j.Mem < 0 || j.Mem > 1 {
				t.Fatalf("%s: job %d outside canonical ranges: %+v", f.file, i, j)
			}
		}
	}
}

func TestParseGoogleEventPairing(t *testing.T) {
	csv := strings.Join([]string{
		"timestamp,missing,jobid,taskidx,machine,event,user,class,prio,cpu,mem,disk,diff", // header
		"1000000,,100,0,7,0,u,0,0,0.25,0.50,0.001,0",                                      // submit A
		"2000000,,100,1,7,0,u,0,0,0.50,0.25,0.001,0",                                      // submit B
		"3000000,,100,0,7,4,u,0,0,0.25,0.50,0.001,0",                                      // finish A (2s run)
		"4000000,,999,9,7,4,u,0,0,0.10,0.10,0.001,0",                                      // finish, unseen submit
		"bogus,,1,1,7,0,u,0,0,0.1,0.1,0.001,0",                                            // unparsable timestamp
		"5000000,,100,2,7,0,u,0,0,nope,0.10,0.001,0",                                      // bad cpu cell
	}, "\n")
	tr, err := ParseGoogle(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rows != 6 || tr.Dropped != 3 {
		t.Fatalf("rows=%d dropped=%d, want 6 rows with 3 dropped", tr.Rows, tr.Dropped)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("jobs = %d, want paired A + orphaned B", len(tr.Jobs))
	}
	a, b := tr.Jobs[0], tr.Jobs[1]
	if a.ID != "100/0" || a.ArrivalSec != 0 || a.DurationSec != 2 || a.CPU != 0.25 || a.Mem != 0.5 {
		t.Errorf("paired task parsed as %+v", a)
	}
	// B never terminated: arrival 1s after A, duration defaulted to the mean
	// of known durations (only A's 2s).
	if b.ID != "100/1" || b.ArrivalSec != 1 || b.DurationSec != 2 {
		t.Errorf("orphan task parsed as %+v", b)
	}
	if tr.Defaulted != 1 {
		t.Errorf("defaulted = %d, want 1", tr.Defaulted)
	}
}

// TestParseGoogleOrphanOrderDeterministic pins the open-at-EOF emission
// order: orphaned tasks sharing one arrival instant must keep SUBMIT file
// order (a map-iteration append would scramble them run to run).
func TestParseGoogleOrphanOrderDeterministic(t *testing.T) {
	rows := []string{
		"1000000,,1,0,7,0,u,0,0,0.10,0.10,0.001,0",
		"1000000,,2,0,7,0,u,0,0,0.20,0.20,0.001,0",
		"1000000,,3,0,7,0,u,0,0,0.30,0.30,0.001,0",
		"1000000,,4,0,7,0,u,0,0,0.40,0.40,0.001,0",
	}
	csv := strings.Join(rows, "\n")
	want := []string{"1/0", "2/0", "3/0", "4/0"}
	for trial := 0; trial < 10; trial++ {
		tr, err := ParseGoogle(strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		for i, j := range tr.Jobs {
			if j.ID != want[i] {
				t.Fatalf("trial %d: job %d is %s, want file order %v", trial, i, j.ID, want)
			}
		}
	}
}

// TestParseGoogleUpdateEventsNotDropped: the schema's UPDATE_PENDING (7) and
// UPDATE_RUNNING (8) events are well-formed rows with no arrival
// information; a healthy real export must not read as mostly "dropped".
func TestParseGoogleUpdateEventsNotDropped(t *testing.T) {
	csv := strings.Join([]string{
		"1000000,,1,0,7,0,u,0,0,0.10,0.10,0.001,0", // submit
		"1500000,,1,0,7,7,u,0,0,0.10,0.10,0.001,0", // update pending
		"2000000,,1,0,7,1,u,0,0,0.10,0.10,0.001,0", // schedule
		"2500000,,1,0,7,8,u,0,0,0.10,0.10,0.001,0", // update running
		"3000000,,1,0,7,4,u,0,0,0.10,0.10,0.001,0", // finish
		"4000000,,1,0,7,9,u,0,0,0.10,0.10,0.001,0", // unknown event type
	}, "\n")
	tr, err := ParseGoogle(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped != 1 {
		t.Errorf("dropped = %d, want only the unknown event type", tr.Dropped)
	}
	if len(tr.Jobs) != 1 || tr.Jobs[0].DurationSec != 2 {
		t.Errorf("jobs = %+v", tr.Jobs)
	}
}

// TestParseGooglePreservesTerminalCause pins the per-job cause identity: the
// parser used to collapse every terminal event into "the task stopped";
// fault injection (fault.FromTrace, pliant-sched -trace-faults) needs the
// real FINISH/EVICT/FAIL/KILL/LOST mix preserved per job and censused.
func TestParseGooglePreservesTerminalCause(t *testing.T) {
	csv := strings.Join([]string{
		"1000000,,1,0,7,0,u,0,0,0.10,0.10,0.001,0", // submit 1/0
		"1100000,,2,0,7,0,u,0,0,0.10,0.10,0.001,0", // submit 2/0
		"1200000,,3,0,7,0,u,0,0,0.10,0.10,0.001,0", // submit 3/0
		"1300000,,4,0,7,0,u,0,0,0.10,0.10,0.001,0", // submit 4/0
		"1400000,,5,0,7,0,u,0,0,0.10,0.10,0.001,0", // submit 5/0
		"1500000,,6,0,7,0,u,0,0,0.10,0.10,0.001,0", // submit 6/0 (orphan)
		"2000000,,1,0,7,4,u,0,0,0.10,0.10,0.001,0", // finish
		"2100000,,2,0,7,2,u,0,0,0.10,0.10,0.001,0", // evict
		"2200000,,3,0,7,3,u,0,0,0.10,0.10,0.001,0", // fail
		"2300000,,4,0,7,5,u,0,0,0.10,0.10,0.001,0", // kill
		"2400000,,5,0,7,6,u,0,0,0.10,0.10,0.001,0", // lost
	}, "\n")
	tr, err := ParseGoogle(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Cause{
		"1/0": CauseFinish, "2/0": CauseEvict, "3/0": CauseFail,
		"4/0": CauseKill, "5/0": CauseLost, "6/0": CauseUnknown,
	}
	if len(tr.Jobs) != len(want) {
		t.Fatalf("jobs = %d, want %d", len(tr.Jobs), len(want))
	}
	for _, j := range tr.Jobs {
		if j.Cause != want[j.ID] {
			t.Errorf("job %s cause = %v, want %v", j.ID, j.Cause, want[j.ID])
		}
	}
	wantCounts := CauseCounts{Finish: 1, Evict: 1, Fail: 1, Kill: 1, Lost: 1, Unknown: 1}
	if tr.Causes != wantCounts {
		t.Errorf("causes = %+v, want %+v", tr.Causes, wantCounts)
	}
	if got := tr.Causes.Terminated(); got != 5 {
		t.Errorf("terminated = %d, want 5", got)
	}
	if got := tr.Causes.Failures(); got != 4 {
		t.Errorf("failures = %d, want 4", got)
	}
	if got := tr.FailureFrac(); got != 0.8 {
		t.Errorf("failure fraction = %v, want 0.8", got)
	}
}

// TestNormalizeRecensusesCauses pins that down-sampling recounts the cause
// census over the surviving jobs — the sample's mix, not the source's.
func TestNormalizeRecensusesCauses(t *testing.T) {
	raw := Synthesize(SynthConfig{Format: Google, Jobs: 80, SpanSec: 600, Seed: 3, FailureFrac: 0.5})
	parsed, err := Parse(bytes.NewReader(raw), Google)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := parsed.Normalize(Options{MaxJobs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := countCauses(tr.Jobs); got != tr.Causes {
		t.Errorf("normalized census %+v does not match its jobs %+v", tr.Causes, got)
	}
	if tr.Causes.Terminated() == len(parsed.Jobs) {
		t.Error("down-sampled census still counts the full source trace")
	}
}

// TestSynthesizeFailureFrac: with the knob on, the fixture carries every
// failure-shaped terminal and the parsed failure fraction lands near the
// configured rate; with the knob off (the default), the generator draws no
// extra randomness, so pre-knob fixtures stay byte-identical — which
// TestFixturesMatchSynthesize pins against the committed files.
func TestSynthesizeFailureFrac(t *testing.T) {
	raw := Synthesize(SynthConfig{Format: Google, Jobs: 200, SpanSec: 3600, Seed: 5, FailureFrac: 0.5})
	tr, err := Parse(bytes.NewReader(raw), Google)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Causes
	if c.Evict == 0 || c.Fail == 0 || c.Kill == 0 || c.Lost == 0 {
		t.Fatalf("failure mix missing a kind: %+v", c)
	}
	if c.Finish == 0 {
		t.Fatal("no task finished normally")
	}
	if frac := tr.FailureFrac(); frac < 0.35 || frac > 0.65 {
		t.Errorf("failure fraction = %v, want near the configured 0.5", frac)
	}
	// Azure has no cause column: the knob must not disturb its bytes.
	base := SynthConfig{Format: Azure, Jobs: 40, SpanSec: 600, Seed: 13, Orphans: 0.15}
	withFrac := base
	withFrac.FailureFrac = 0.5
	if !bytes.Equal(Synthesize(base), Synthesize(withFrac)) {
		t.Error("FailureFrac changed Azure fixture bytes")
	}
}

func TestParseAzureRows(t *testing.T) {
	csv := strings.Join([]string{
		"vmid,sub,dep,created,deleted,maxcpu,avgcpu,p95,category,cores,mem", // header
		"vm_a,s,d,100,400,90,50,80,Interactive,4,14",                        // 300s VM
		"vm_b,s,d,150,,90,50,80,Interactive,>24,>64",                        // still running, top buckets
		"vm_c,s,d,200,120,90,50,80,Interactive,2,3.5",                       // inverted pair: duration defaulted
		"vm_d,s,d,nope,400,90,50,80,Interactive,1,1.75",                     // bad created
		"vm_e,s,d,300,600,90,50,80,Interactive,huh,1.75",                    // bad bucket
	}, "\n")
	tr, err := ParseAzure(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rows != 5 || tr.Dropped != 2 || tr.Defaulted != 2 {
		t.Fatalf("rows=%d dropped=%d defaulted=%d, want 5/2/2", tr.Rows, tr.Dropped, tr.Defaulted)
	}
	if len(tr.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	a := tr.Jobs[0]
	if a.ID != "vm_a" || a.ArrivalSec != 0 || a.DurationSec != 300 {
		t.Errorf("vm_a parsed as %+v", a)
	}
	if got := a.CPU; got != 4.0/azureMaxCores {
		t.Errorf("vm_a cpu %v", got)
	}
	b := tr.Jobs[1]
	if b.ID != "vm_b" || b.CPU != 1 || b.Mem != 1 || b.DurationSec != 300 {
		t.Errorf("vm_b parsed as %+v (top buckets, defaulted duration)", b)
	}
	if c := tr.Jobs[2]; c.ID != "vm_c" || c.DurationSec != 300 {
		t.Errorf("vm_c parsed as %+v (inverted pair defaults)", c)
	}
}

func TestParseRejectsEmptyAndUnknown(t *testing.T) {
	if _, err := ParseGoogle(strings.NewReader("")); err == nil {
		t.Error("empty google trace accepted")
	}
	if _, err := ParseAzure(strings.NewReader("")); err == nil {
		t.Error("empty azure trace accepted")
	}
	if _, err := Parse(strings.NewReader("x"), Format(99)); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := FormatByName("vmware"); err == nil {
		t.Error("unknown format name accepted")
	}
	for _, name := range []string{"google", "azure"} {
		f, err := FormatByName(name)
		if err != nil || f.String() != name {
			t.Errorf("FormatByName(%q) = %v, %v", name, f, err)
		}
	}
}

func TestNormalize(t *testing.T) {
	tr := &Trace{Source: "synthetic", Jobs: []Job{
		{ID: "0", ArrivalSec: 0, DurationSec: 10, CPU: 0.1},
		{ID: "1", ArrivalSec: 100, DurationSec: 20, CPU: 0.2},
		{ID: "2", ArrivalSec: 250, DurationSec: 30, CPU: 0.3},
		{ID: "3", ArrivalSec: 400, DurationSec: 40, CPU: 0.4},
	}}

	// Target span compresses the axis; durations scale independently.
	n, err := tr.Normalize(Options{TargetSpanSec: 40, DurationScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.SpanSec(); got != 40 {
		t.Errorf("span %v, want 40", got)
	}
	if n.Jobs[1].ArrivalSec != 10 || n.Jobs[1].DurationSec != 10 {
		t.Errorf("job 1 scaled to %+v", n.Jobs[1])
	}
	if tr.Jobs[1].ArrivalSec != 100 {
		t.Error("normalize mutated the receiver")
	}

	// RateScale alone divides the axis.
	n, err = tr.Normalize(Options{RateScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.SpanSec(); got != 100 {
		t.Errorf("rate-scaled span %v, want 100", got)
	}

	// Stride down-sampling keeps the first job and the temporal shape, and
	// is deterministic.
	n, err = tr.Normalize(Options{MaxJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := tr.Normalize(Options{MaxJobs: 2})
	if len(n.Jobs) != 2 || n.Jobs[0].ID != "0" || n.Jobs[1].ID != "2" {
		t.Errorf("down-sample kept %+v", n.Jobs)
	}
	for i := range n.Jobs {
		if n.Jobs[i] != n2.Jobs[i] {
			t.Fatal("down-sampling not deterministic")
		}
	}

	for _, bad := range []Options{
		{RateScale: -1}, {TargetSpanSec: -1}, {DurationScale: -1}, {MaxJobs: -1},
	} {
		if _, err := tr.Normalize(bad); err == nil {
			t.Errorf("options %+v accepted", bad)
		}
	}
	empty := &Trace{}
	if _, err := empty.Normalize(Options{}); err == nil {
		t.Error("empty trace normalized")
	}
}

func TestRateShape(t *testing.T) {
	// 6 jobs in bin 0, none in bin 1, 2 in bin 2 over a 30s span.
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, Job{ArrivalSec: float64(i)})
	}
	jobs = append(jobs, Job{ArrivalSec: 25}, Job{ArrivalSec: 30})
	tr := &Trace{Jobs: jobs}
	times, mult, err := tr.RateShape(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 || times[0] != 0 || times[1] != 10 || times[2] != 20 {
		t.Fatalf("bin times %v", times)
	}
	mean := 8.0 / 3.0
	if mult[0] != 6/mean || mult[1] != 0.01 || mult[2] != 2/mean {
		t.Fatalf("bin multipliers %v (empty bins must floor at 0.01)", mult)
	}
	if _, _, err := tr.RateShape(0); err == nil {
		t.Error("zero bins accepted")
	}
	one := &Trace{Jobs: jobs[:1]}
	if _, _, err := one.RateShape(2); err == nil {
		t.Error("degenerate span accepted")
	}
}

// TestSynthesizeShape checks the generator produces the scenario axis it
// promises: deterministic bytes, a heavy-tailed gap distribution, and a burst
// window denser than the trace mean.
func TestSynthesizeShape(t *testing.T) {
	cfg := SynthConfig{Format: Google, Jobs: 300, SpanSec: 3000, Seed: 5}
	a, b := Synthesize(cfg), Synthesize(cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("synthesize not deterministic")
	}
	// Degenerate counts fall back to the default instead of panicking.
	if neg := Synthesize(SynthConfig{Format: Google, Jobs: -1}); len(neg) == 0 {
		t.Error("negative job count produced no trace")
	}
	tr, err := Parse(bytes.NewReader(a), Google)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != cfg.Jobs {
		t.Fatalf("jobs = %d, want %d", len(tr.Jobs), cfg.Jobs)
	}
	// Heavy tail: the largest inter-arrival gap dwarfs the median gap.
	var gaps []float64
	for i := 1; i < len(tr.Jobs); i++ {
		gaps = append(gaps, tr.Jobs[i].ArrivalSec-tr.Jobs[i-1].ArrivalSec)
	}
	sort.Float64s(gaps)
	median, max := gaps[len(gaps)/2], gaps[len(gaps)-1]
	if max < 8*median {
		t.Errorf("max gap %.2fs only %.1f× median %.2fs — tail not heavy", max, max/median, median)
	}
	// The span is exactly what the config named, and the flash burst packs
	// its stretch of the stream into far less time than the stretch before
	// it: arrivals 60–68% of the index bunch tightly.
	if span := tr.SpanSec(); span < cfg.SpanSec*0.999 || span > cfg.SpanSec*1.001 {
		t.Errorf("span %.1fs, want %.0fs", span, cfg.SpanSec)
	}
	n := len(tr.Jobs)
	at := func(frac float64) float64 { return tr.Jobs[int(frac*float64(n))].ArrivalSec }
	before, during := at(0.60)-at(0.52), at(0.68)-at(0.60)
	if during*2 > before {
		t.Errorf("burst stretch spans %.0fs vs %.0fs before it — want ≥2× denser", during, before)
	}
}
