// Package version renders the one-line build identity every pliant CLI and
// the serving daemon print for -version. Everything comes from the build
// info the go toolchain embeds (runtime/debug.ReadBuildInfo) — no ldflags,
// no generated files — so the string is accurate for plain `go build` and
// `go install` alike.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String returns "<module> <version> (<go version>[, <vcs> <rev>[ dirty]])".
// The module version is "(devel)" for in-tree builds; when VCS stamping is
// available the revision (trimmed to 12 chars) and dirty flag are appended.
func String() string {
	mod, ver := "github.com/approx-sched/pliant", "(devel)"
	var vcsBits []string
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			mod = bi.Main.Path
		}
		if bi.Main.Version != "" {
			ver = bi.Main.Version
		}
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = " dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			vcsBits = append(vcsBits, fmt.Sprintf("rev %s%s", rev, dirty))
		}
	}
	parts := append([]string{runtime.Version()}, vcsBits...)
	return fmt.Sprintf("%s %s (%s)", mod, ver, strings.Join(parts, ", "))
}
