package version

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStringFormat sanity-checks the build identity line: module path,
// a version token, and a parenthesized toolchain suffix.
func TestStringFormat(t *testing.T) {
	s := String()
	if !strings.HasPrefix(s, "github.com/approx-sched/pliant ") {
		t.Fatalf("version %q does not start with the module path", s)
	}
	if !strings.Contains(s, "(go") || !strings.HasSuffix(s, ")") {
		t.Fatalf("version %q does not carry a parenthesized go toolchain suffix", s)
	}
}

// TestEveryBinarySharesVersion pins the -version contract: every binary
// under cmd/ prints the one build identity, by calling pliant.Version()
// (which delegates here) rather than hand-rolling its own string. The test
// parses each main.go and requires both the call and a -version flag.
func TestEveryBinarySharesVersion(t *testing.T) {
	cmdDir := filepath.Join("..", "..", "cmd")
	entries, err := os.ReadDir(cmdDir)
	if err != nil {
		t.Fatal(err)
	}
	var binaries []string
	for _, e := range entries {
		if e.IsDir() {
			binaries = append(binaries, e.Name())
		}
	}
	if len(binaries) < 6 {
		t.Fatalf("found %d binaries under cmd/, want at least 6: %v", len(binaries), binaries)
	}
	for _, bin := range binaries {
		path := filepath.Join(cmdDir, bin, "main.go")
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		callsVersion, declaresFlag := false, false
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if x, ok := sel.X.(*ast.Ident); ok {
					if x.Name == "pliant" && sel.Sel.Name == "Version" {
						callsVersion = true
					}
					if x.Name == "flag" && len(call.Args) > 0 {
						if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Value == `"version"` {
							declaresFlag = true
						}
					}
				}
			}
			return true
		})
		if !callsVersion {
			t.Errorf("%s does not call pliant.Version(); every binary must share one build identity", path)
		}
		if !declaresFlag {
			t.Errorf("%s does not declare a -version flag", path)
		}
	}
}
