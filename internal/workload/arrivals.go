package workload

import (
	"fmt"

	"github.com/approx-sched/pliant/internal/sim"
)

// ArrivalProcess generates the inter-arrival gap before the next request.
type ArrivalProcess interface {
	// Next returns the gap to the next arrival. Implementations must return
	// strictly positive durations.
	Next(rng *sim.RNG) sim.Duration
	// Rate returns the mean arrival rate in requests/second.
	Rate() float64
}

// Poisson is the open-loop arrival process used by the paper's workload
// generators: exponential inter-arrival gaps, arrivals independent of
// completions, so a slow server accumulates queueing rather than throttling
// the offered load.
type Poisson struct {
	QPS float64
}

// NewPoisson returns a Poisson process at the given queries per second.
func NewPoisson(qps float64) (Poisson, error) {
	if qps <= 0 {
		return Poisson{}, fmt.Errorf("workload: poisson needs positive qps, got %v", qps)
	}
	return Poisson{QPS: qps}, nil
}

// Next draws an exponential gap.
func (p Poisson) Next(rng *sim.RNG) sim.Duration {
	gap := rng.Exp(1 / p.QPS) // seconds
	d := sim.DurationOf(gap)
	if d <= 0 {
		d = 1 // clamp to 1ns: zero gaps would starve the event loop ordering
	}
	return d
}

// Rate returns the configured QPS.
func (p Poisson) Rate() float64 { return p.QPS }

// Uniform emits arrivals at a fixed spacing — a deterministic process useful
// for tests, since queues behave predictably under it.
type Uniform struct {
	QPS float64
}

// Next returns the fixed gap 1/QPS.
func (u Uniform) Next(*sim.RNG) sim.Duration {
	d := sim.DurationOf(1 / u.QPS)
	if d <= 0 {
		d = 1
	}
	return d
}

// Rate returns the configured QPS.
func (u Uniform) Rate() float64 { return u.QPS }
