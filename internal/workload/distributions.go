// Package workload provides the stochastic building blocks for driving the
// interactive services: arrival processes (open-loop Poisson, as in the
// paper's client generators), service-demand distributions (log-normal with
// heavy right tails, bimodal disk-bound mixtures), and key-popularity skew
// (Zipf) for cache-like services.
package workload

import (
	"fmt"
	"math"

	"github.com/approx-sched/pliant/internal/sim"
)

// Sampler produces successive values of a distribution, in arbitrary units.
type Sampler interface {
	Sample(rng *sim.RNG) float64
	// Mean returns the distribution's analytic mean, used to compute
	// saturation throughput without simulation.
	Mean() float64
}

// Constant is a degenerate distribution.
type Constant float64

// Sample returns the constant value.
func (c Constant) Sample(*sim.RNG) float64 { return float64(c) }

// Mean returns the constant value.
func (c Constant) Mean() float64 { return float64(c) }

// Exponential is the memoryless distribution with the given mean.
type Exponential struct{ M float64 }

// Sample draws an exponential value.
func (e Exponential) Sample(rng *sim.RNG) float64 { return rng.Exp(e.M) }

// Mean returns the analytic mean.
func (e Exponential) Mean() float64 { return e.M }

// LogNormal is parameterized by its median and the sigma of the underlying
// normal. Interactive request service times are well described by
// log-normals: most requests are quick, a few percent are much slower.
type LogNormal struct {
	Median float64
	Sigma  float64
}

// Sample draws a log-normal value.
func (l LogNormal) Sample(rng *sim.RNG) float64 {
	return rng.LogNormal(math.Log(l.Median), l.Sigma)
}

// Mean returns the analytic mean median·exp(sigma²/2).
func (l LogNormal) Mean() float64 {
	return l.Median * math.Exp(l.Sigma*l.Sigma/2)
}

// compiledLogNormal is LogNormal with the underlying normal's mu hoisted out
// of the per-sample path; Compile produces it.
type compiledLogNormal struct {
	mu, sigma float64
	mean      float64
}

// Sample draws a log-normal value, bit-identical to LogNormal.Sample.
func (c compiledLogNormal) Sample(rng *sim.RNG) float64 {
	return rng.LogNormal(c.mu, c.sigma)
}

// Mean returns the analytic mean.
func (c compiledLogNormal) Mean() float64 { return c.mean }

// Compile returns a sampler that produces the identical value stream (same
// RNG draws, same float operations) with per-sample constants hoisted —
// LogNormal recomputes log(median) every sample, which dominates the
// request hot path. Samplers with nothing to hoist are returned unchanged.
func Compile(s Sampler) Sampler {
	switch t := s.(type) {
	case LogNormal:
		return compiledLogNormal{mu: math.Log(t.Median), sigma: t.Sigma, mean: t.Mean()}
	case Bimodal:
		return Bimodal{Light: Compile(t.Light), Heavy: Compile(t.Heavy), PHeavy: t.PHeavy}
	default:
		return s
	}
}

// scaledLogNormal is a LogNormal whose samples are multiplied by a constant
// factor, flattened into one object; CompileScaled produces it.
type scaledLogNormal struct {
	mu, sigma float64
	f         float64
	mean      float64
}

// Sample draws exactly LogNormal.Sample(rng) * f.
func (s scaledLogNormal) Sample(rng *sim.RNG) float64 {
	return rng.LogNormal(s.mu, s.sigma) * s.f
}

// Mean returns the analytic mean of the scaled distribution.
func (s scaledLogNormal) Mean() float64 { return s.mean }

// CompileScaled returns a single flattened sampler computing
// Compile(s).Sample(rng)*f — identical draws and float operations to the
// wrapped form — or nil when s has no flattened representation (the caller
// keeps its wrapper).
func CompileScaled(s Sampler, f float64) Sampler {
	if ln, ok := s.(LogNormal); ok {
		return scaledLogNormal{mu: math.Log(ln.Median), sigma: ln.Sigma, f: f, mean: ln.Mean() * f}
	}
	return nil
}

// Bimodal mixes two samplers: with probability PHeavy the heavy sampler is
// used. It models services where a fraction of requests miss cache and go to
// disk (MongoDB) or take a slow path.
type Bimodal struct {
	Light  Sampler
	Heavy  Sampler
	PHeavy float64
}

// Sample draws from the mixture.
func (b Bimodal) Sample(rng *sim.RNG) float64 {
	if rng.Bernoulli(b.PHeavy) {
		return b.Heavy.Sample(rng)
	}
	return b.Light.Sample(rng)
}

// Mean returns the mixture mean.
func (b Bimodal) Mean() float64 {
	return (1-b.PHeavy)*b.Light.Mean() + b.PHeavy*b.Heavy.Mean()
}

// Zipf generates ranks in [0, N) with Zipfian skew s (s=0 is uniform).
// Used for key popularity in the memcached dataset (5M items) and file
// popularity for NGINX (1M files).
type Zipf struct {
	N int
	S float64

	cdf []float64 // lazily built cumulative distribution
}

// NewZipf precomputes the rank CDF. N above ~10M would make the table large;
// the paper's datasets (1M, 5M) are fine at 8 bytes per rank.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs positive N, got %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: zipf skew must be non-negative, got %v", s)
	}
	z := &Zipf{N: n, S: s, cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z, nil
}

// Rank draws a rank in [0, N), rank 0 being the most popular.
func (z *Zipf) Rank(rng *sim.RNG) int {
	u := rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.N-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// HitRatio returns the fraction of draws that fall within the top-k ranks —
// the analytic cache hit ratio for a cache holding the k hottest items.
func (z *Zipf) HitRatio(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= z.N {
		return 1
	}
	return z.cdf[k-1]
}
