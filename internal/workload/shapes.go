package workload

import (
	"fmt"
	"math"
	"sort"

	"github.com/approx-sched/pliant/internal/sim"
)

// Shape is a deterministic time-varying load multiplier: the offered load at
// time t is the base rate times Multiplier(t). Shapes model the load patterns
// a cluster-horizon study needs — diurnal swings, flash crowds, replayed
// traces — which the paper's fixed-fraction runs (minutes of steady load)
// abstract away. Multipliers are clamped positive by consumers; a shape whose
// multiplier dips to zero would starve the open-loop client.
type Shape interface {
	Name() string
	// Multiplier returns the load multiplier at t seconds from the start of
	// the run.
	Multiplier(tSec float64) float64
}

// minMultiplier is the floor consumers clamp shape multipliers to: an
// open-loop generator needs a strictly positive rate.
const minMultiplier = 0.01

// ClampMultiplier applies the positivity floor every Shape consumer uses.
func ClampMultiplier(m float64) float64 {
	if m < minMultiplier || math.IsNaN(m) {
		return minMultiplier
	}
	return m
}

// Steady is the constant shape: the paper's fixed-fraction load. A zero Level
// means 1.0, so the zero value is the identity shape.
type Steady struct{ Level float64 }

// Name identifies the shape.
func (s Steady) Name() string { return "steady" }

// Multiplier returns the constant level.
func (s Steady) Multiplier(float64) float64 {
	if s.Level == 0 {
		return 1
	}
	return s.Level
}

// Diurnal is a sinusoidal day: load swings by ±Amp around 1 with the given
// period. PhaseSec shifts the curve so t=PhaseSec is mid-ramp (the peak sits
// a quarter period after it).
type Diurnal struct {
	Amp       float64 // peak deviation from 1, in [0, 1)
	PeriodSec float64 // length of one "day"
	PhaseSec  float64
}

// NewDiurnal validates and returns a diurnal shape.
func NewDiurnal(amp, periodSec float64) (Diurnal, error) {
	if amp < 0 || amp >= 1 {
		return Diurnal{}, fmt.Errorf("workload: diurnal amplitude %v outside [0,1)", amp)
	}
	if periodSec <= 0 {
		return Diurnal{}, fmt.Errorf("workload: diurnal period must be positive, got %v", periodSec)
	}
	return Diurnal{Amp: amp, PeriodSec: periodSec}, nil
}

// Name identifies the shape.
func (d Diurnal) Name() string { return "diurnal" }

// Multiplier returns 1 + Amp·sin(2π(t−Phase)/Period).
func (d Diurnal) Multiplier(tSec float64) float64 {
	if d.PeriodSec <= 0 {
		return 1
	}
	return 1 + d.Amp*math.Sin(2*math.Pi*(tSec-d.PhaseSec)/d.PeriodSec)
}

// Flash is a step or flash crowd: the multiplier is the base level outside
// the event and Peak inside [StartSec, StartSec+DurationSec). A zero
// DurationSec makes the step permanent (load settles at the new level), a
// finite one models a transient flash crowd. In a zero-value literal,
// Base == 0 resolves to the unit base via BaseLevel — the same
// usable-zero-value convention as Steady — but NewFlash requires the base
// spelled out, so a constructed shape never rides a hidden default.
type Flash struct {
	Base        float64
	Peak        float64
	StartSec    float64
	DurationSec float64
}

// NewFlash validates and returns a flash/step shape. The base must be
// explicitly positive: passing 0 here used to silently mean 1.0, the same
// unconfigurable-zero ambiguity autoscale.Consolidate's reserve had; callers
// who want the unit base pass 1.
func NewFlash(base, peak, startSec, durationSec float64) (Flash, error) {
	if base <= 0 || peak <= 0 {
		return Flash{}, fmt.Errorf("workload: flash needs positive peak (got %v) and positive base (got %v; pass 1 for the unit base)",
			peak, base)
	}
	if startSec < 0 || durationSec < 0 {
		return Flash{}, fmt.Errorf("workload: flash start %v / duration %v must be non-negative", startSec, durationSec)
	}
	return Flash{Base: base, Peak: peak, StartSec: startSec, DurationSec: durationSec}, nil
}

// Name identifies the shape.
func (f Flash) Name() string { return "flash" }

// BaseLevel resolves the outside-the-event multiplier: Base, or 1.0 for the
// zero-value literal. This is the single place the zero value gains meaning;
// Multiplier and any future consumer go through it.
func (f Flash) BaseLevel() float64 {
	if f.Base == 0 {
		return 1
	}
	return f.Base
}

// Multiplier implements Shape.
func (f Flash) Multiplier(tSec float64) float64 {
	if tSec < f.StartSec {
		return f.BaseLevel()
	}
	if f.DurationSec > 0 && tSec >= f.StartSec+f.DurationSec {
		return f.BaseLevel()
	}
	return f.Peak
}

// Replay is a trace-replay shape: a step function through recorded
// (time, multiplier) samples, holding each value until the next sample — the
// same semantics as production load traces replayed at interval granularity.
// Duplicate instants are legal (real exports revise a sample in place by
// appending a second row at the same timestamp) and resolve last-sample-wins.
type Replay struct {
	TimesSec []float64 // non-decreasing sample instants
	Mult     []float64 // multiplier in effect from the matching instant
}

// NewReplay validates and returns a replay shape. Times must not decrease;
// duplicate instants are allowed and mean the later sample revises the
// earlier one.
func NewReplay(timesSec, mult []float64) (Replay, error) {
	if len(timesSec) == 0 || len(timesSec) != len(mult) {
		return Replay{}, fmt.Errorf("workload: replay needs equal, non-empty sample slices (%d times, %d multipliers)",
			len(timesSec), len(mult))
	}
	if !sort.Float64sAreSorted(timesSec) {
		return Replay{}, fmt.Errorf("workload: replay times must not decrease")
	}
	for _, m := range mult {
		if m <= 0 {
			return Replay{}, fmt.Errorf("workload: replay multiplier %v not positive", m)
		}
	}
	return Replay{TimesSec: timesSec, Mult: mult}, nil
}

// Name identifies the shape.
func (r Replay) Name() string { return "replay" }

// Multiplier returns the sample in effect at t: the latest sample at or
// before t, or the first sample before the trace starts. Among samples
// sharing one instant the last wins — SearchFloat64s would land on the
// first of the run and silently keep a revised-away value.
func (r Replay) Multiplier(tSec float64) float64 {
	if len(r.TimesSec) == 0 {
		return 1
	}
	// First index with time strictly after t; the sample before it (the last
	// one at or before t) is in effect.
	i := sort.Search(len(r.TimesSec), func(k int) bool { return r.TimesSec[k] > tSec })
	if i == 0 {
		return r.Mult[0]
	}
	return r.Mult[i-1]
}

// Shifted evaluates an inner shape at t+BySec: a scheduler handing a node an
// episode starting at cluster time T shifts the cluster-horizon shape by T so
// the episode's local clock sees the right part of the day.
type Shifted struct {
	Inner Shape
	BySec float64
}

// Name identifies the shape.
func (s Shifted) Name() string { return s.Inner.Name() + "+shift" }

// Multiplier implements Shape.
func (s Shifted) Multiplier(tSec float64) float64 { return s.Inner.Multiplier(tSec + s.BySec) }

// TimedArrival is the optional ArrivalProcess extension for non-stationary
// processes: NextAt receives the current virtual time, which the gap
// distribution may depend on.
type TimedArrival interface {
	ArrivalProcess
	NextAt(rng *sim.RNG, now sim.Time) sim.Duration
}

// ShapedPoisson is a non-stationary Poisson process: exponential gaps whose
// rate is BaseQPS·Shape.Multiplier(t), with the rate frozen at the draw
// instant. For shapes that vary slowly relative to the inter-arrival gap —
// diurnal periods and flash-crowd plateaus are many thousands of gaps long —
// this piecewise-stationary approximation is standard and indistinguishable
// from thinning.
type ShapedPoisson struct {
	BaseQPS float64
	Shape   Shape
}

// NewShapedPoisson validates and returns a shaped Poisson process.
func NewShapedPoisson(baseQPS float64, shape Shape) (ShapedPoisson, error) {
	if baseQPS <= 0 {
		return ShapedPoisson{}, fmt.Errorf("workload: shaped poisson needs positive base qps, got %v", baseQPS)
	}
	if shape == nil {
		return ShapedPoisson{}, fmt.Errorf("workload: shaped poisson needs a shape")
	}
	return ShapedPoisson{BaseQPS: baseQPS, Shape: shape}, nil
}

// maxGapSec caps one inter-arrival gap at ~31 simulated years: beyond any
// reachable horizon, yet finite, so a degenerate rate can never push an
// Inf/NaN gap through DurationOf (whose float→int64 conversion would wrap an
// astronomical gap into a *negative* duration, which the ≤0 clamp then turns
// into a 1ns arrival storm — the exact inversion of "no arrivals").
const maxGapSec = 1e9

// NextAt draws an exponential gap at the rate in effect now. A non-positive
// or non-finite effective rate — a zero-rate literal bypassing
// NewShapedPoisson, or a multiplier the clamp cannot rescue — yields the
// finite cap rather than an Inf/NaN gap.
func (p ShapedPoisson) NextAt(rng *sim.RNG, now sim.Time) sim.Duration {
	rate := p.BaseQPS * ClampMultiplier(p.Shape.Multiplier(now.Seconds()))
	if !(rate > 0) { // zero, negative, or NaN
		return sim.DurationOf(maxGapSec)
	}
	gap := rng.Exp(1 / rate)
	if !(gap < maxGapSec) { // catches Inf and NaN alongside huge draws
		gap = maxGapSec
	}
	d := sim.DurationOf(gap)
	if d <= 0 {
		d = 1
	}
	return d
}

// Next draws a gap at the t=0 rate, satisfying ArrivalProcess for consumers
// unaware of time; time-aware generators use NextAt.
func (p ShapedPoisson) Next(rng *sim.RNG) sim.Duration { return p.NextAt(rng, 0) }

// Rate returns the base rate; the instantaneous rate is shaped around it.
func (p ShapedPoisson) Rate() float64 { return p.BaseQPS }
