package workload

import (
	"math"
	"testing"

	"github.com/approx-sched/pliant/internal/sim"
)

func TestSteadyShape(t *testing.T) {
	if m := (Steady{}).Multiplier(123); m != 1 {
		t.Fatalf("zero-value steady multiplier %v, want 1", m)
	}
	if m := (Steady{Level: 0.5}).Multiplier(0); m != 0.5 {
		t.Fatalf("steady multiplier %v, want 0.5", m)
	}
}

func TestDiurnalPhasePoints(t *testing.T) {
	d, err := NewDiurnal(0.3, 86400)
	if err != nil {
		t.Fatal(err)
	}
	// Known phase points of 1 + 0.3·sin(2πt/86400).
	cases := []struct{ t, want float64 }{
		{0, 1},               // mid-ramp
		{21600, 1.3},         // quarter period: peak
		{43200, 1},           // half period: mid-fall
		{64800, 0.7},         // three quarters: trough
		{86400, 1},           // full day wraps
		{86400 + 21600, 1.3}, // second day peak
	}
	for _, c := range cases {
		if got := d.Multiplier(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("diurnal(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if _, err := NewDiurnal(1.2, 100); err == nil {
		t.Fatal("amplitude ≥1 accepted")
	}
	if _, err := NewDiurnal(0.2, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestFlashShape(t *testing.T) {
	// Transient flash crowd.
	f := Flash{Peak: 3, StartSec: 10, DurationSec: 5}
	for _, c := range []struct{ t, want float64 }{
		{0, 1}, {9.99, 1}, {10, 3}, {14.99, 3}, {15, 1}, {100, 1},
	} {
		if got := f.Multiplier(c.t); got != c.want {
			t.Errorf("flash(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Permanent step.
	s := Flash{Base: 0.8, Peak: 1.6, StartSec: 20}
	if s.Multiplier(19) != 0.8 || s.Multiplier(20) != 1.6 || s.Multiplier(1e6) != 1.6 {
		t.Fatal("permanent step wrong")
	}
	// The validating constructor rejects the silent-footgun configs.
	if _, err := NewFlash(1, 0, 10, 5); err == nil {
		t.Fatal("zero peak accepted")
	}
	if _, err := NewFlash(-1, 2, 10, 5); err == nil {
		t.Fatal("negative base accepted")
	}
	if _, err := NewFlash(1, 2, -1, 5); err == nil {
		t.Fatal("negative start accepted")
	}
	if g, err := NewFlash(1, 2, 10, 5); err != nil || g.Multiplier(12) != 2 {
		t.Fatalf("valid flash rejected: %v %v", g, err)
	}
}

func TestReplayShape(t *testing.T) {
	r, err := NewReplay([]float64{0, 10, 20}, []float64{1, 2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ t, want float64 }{
		{-5, 1}, {0, 1}, {5, 1}, {10, 2}, {19.9, 2}, {20, 0.5}, {1e4, 0.5},
	} {
		if got := r.Multiplier(c.t); got != c.want {
			t.Errorf("replay(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if _, err := NewReplay([]float64{5, 1}, []float64{1, 1}); err == nil {
		t.Fatal("unsorted times accepted")
	}
	if _, err := NewReplay([]float64{0}, []float64{-1}); err == nil {
		t.Fatal("negative multiplier accepted")
	}
	if _, err := NewReplay(nil, nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestShiftedShape(t *testing.T) {
	d, _ := NewDiurnal(0.3, 86400)
	s := Shifted{Inner: d, BySec: 21600}
	if got, want := s.Multiplier(0), d.Multiplier(21600); math.Abs(got-want) > 1e-12 {
		t.Fatalf("shifted(0) = %v, want %v", got, want)
	}
}

func TestShapedPoissonTracksShape(t *testing.T) {
	d, _ := NewDiurnal(0.5, 1000)
	p, err := NewShapedPoisson(100, d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate() != 100 {
		t.Fatalf("base rate %v", p.Rate())
	}
	// Mean gap at the peak must be about a third of the gap at the trough
	// (rate 150 vs 50).
	meanGap := func(at sim.Time) float64 {
		rng := sim.NewRNG(7)
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += p.NextAt(rng, at).Seconds()
		}
		return sum / n
	}
	peak := meanGap(sim.Time(250) * sim.Time(sim.Second))
	trough := meanGap(sim.Time(750) * sim.Time(sim.Second))
	if ratio := trough / peak; ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("trough/peak gap ratio %.2f, want ≈3", ratio)
	}
}

func TestShapedPoissonDeterministic(t *testing.T) {
	d, _ := NewDiurnal(0.4, 500)
	p, _ := NewShapedPoisson(80, d)
	draw := func(seed uint64) []sim.Duration {
		rng := sim.NewRNG(seed)
		now := sim.Time(0)
		out := make([]sim.Duration, 200)
		for i := range out {
			out[i] = p.NextAt(rng, now)
			now = now.Add(out[i])
		}
		return out
	}
	a, b, c := draw(1), draw(1), draw(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs under equal seeds", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical gap sequences")
	}
}

func TestShapedPoissonValidation(t *testing.T) {
	if _, err := NewShapedPoisson(0, Steady{}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewShapedPoisson(10, nil); err == nil {
		t.Fatal("nil shape accepted")
	}
	// Next (the time-blind path) draws at the t=0 rate.
	p, _ := NewShapedPoisson(10, Steady{})
	rng := sim.NewRNG(3)
	if p.Next(rng) <= 0 {
		t.Fatal("non-positive gap")
	}
	// A shape dipping to zero is clamped, not allowed to stall the client.
	z, _ := NewShapedPoisson(10, Flash{Base: 1, Peak: 0, StartSec: 0})
	if g := z.NextAt(rng, 0); g <= 0 {
		t.Fatal("clamped shape produced non-positive gap")
	}
}
