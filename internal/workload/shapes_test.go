package workload

import (
	"math"
	"testing"

	"github.com/approx-sched/pliant/internal/sim"
)

func TestSteadyShape(t *testing.T) {
	if m := (Steady{}).Multiplier(123); m != 1 {
		t.Fatalf("zero-value steady multiplier %v, want 1", m)
	}
	if m := (Steady{Level: 0.5}).Multiplier(0); m != 0.5 {
		t.Fatalf("steady multiplier %v, want 0.5", m)
	}
}

func TestDiurnalPhasePoints(t *testing.T) {
	d, err := NewDiurnal(0.3, 86400)
	if err != nil {
		t.Fatal(err)
	}
	// Known phase points of 1 + 0.3·sin(2πt/86400).
	cases := []struct{ t, want float64 }{
		{0, 1},               // mid-ramp
		{21600, 1.3},         // quarter period: peak
		{43200, 1},           // half period: mid-fall
		{64800, 0.7},         // three quarters: trough
		{86400, 1},           // full day wraps
		{86400 + 21600, 1.3}, // second day peak
	}
	for _, c := range cases {
		if got := d.Multiplier(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("diurnal(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if _, err := NewDiurnal(1.2, 100); err == nil {
		t.Fatal("amplitude ≥1 accepted")
	}
	if _, err := NewDiurnal(0.2, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestFlashShape(t *testing.T) {
	// Transient flash crowd.
	f := Flash{Peak: 3, StartSec: 10, DurationSec: 5}
	for _, c := range []struct{ t, want float64 }{
		{0, 1}, {9.99, 1}, {10, 3}, {14.99, 3}, {15, 1}, {100, 1},
	} {
		if got := f.Multiplier(c.t); got != c.want {
			t.Errorf("flash(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Permanent step.
	s := Flash{Base: 0.8, Peak: 1.6, StartSec: 20}
	if s.Multiplier(19) != 0.8 || s.Multiplier(20) != 1.6 || s.Multiplier(1e6) != 1.6 {
		t.Fatal("permanent step wrong")
	}
	// The validating constructor rejects the silent-footgun configs —
	// including the zero base, which used to slip through and silently mean
	// 1.0 (the unconfigurable-zero class autoscale.Consolidate also had).
	if _, err := NewFlash(1, 0, 10, 5); err == nil {
		t.Fatal("zero peak accepted")
	}
	if _, err := NewFlash(-1, 2, 10, 5); err == nil {
		t.Fatal("negative base accepted")
	}
	if _, err := NewFlash(0, 2, 10, 5); err == nil {
		t.Fatal("zero base accepted by the constructor")
	}
	if _, err := NewFlash(1, 2, -1, 5); err == nil {
		t.Fatal("negative start accepted")
	}
	if g, err := NewFlash(1, 2, 10, 5); err != nil || g.Multiplier(12) != 2 {
		t.Fatalf("valid flash rejected: %v %v", g, err)
	}
	// The zero-value literal's base resolves through the one explicit
	// place, BaseLevel.
	if (Flash{Peak: 2}).BaseLevel() != 1 || (Flash{Base: 0.5, Peak: 2}).BaseLevel() != 0.5 {
		t.Fatal("BaseLevel zero-value resolution wrong")
	}
}

func TestReplayShape(t *testing.T) {
	r, err := NewReplay([]float64{0, 10, 20}, []float64{1, 2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ t, want float64 }{
		{-5, 1}, {0, 1}, {5, 1}, {10, 2}, {19.9, 2}, {20, 0.5}, {1e4, 0.5},
	} {
		if got := r.Multiplier(c.t); got != c.want {
			t.Errorf("replay(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if _, err := NewReplay([]float64{5, 1}, []float64{1, 1}); err == nil {
		t.Fatal("unsorted times accepted")
	}
	if _, err := NewReplay([]float64{0}, []float64{-1}); err == nil {
		t.Fatal("negative multiplier accepted")
	}
	if _, err := NewReplay(nil, nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// TestReplayDuplicateInstants is the regression for the stale-sample bug:
// a trace revising its multiplier at one instant (two samples at the same
// time, as real exports emit) must apply the revision, not the first-written
// value SearchFloat64s lands on. NewReplay must accept such traces.
func TestReplayDuplicateInstants(t *testing.T) {
	r, err := NewReplay([]float64{0, 10, 10, 10, 20}, []float64{1, 2, 3, 4, 0.5})
	if err != nil {
		t.Fatalf("duplicate instants rejected: %v", err)
	}
	for _, c := range []struct{ t, want float64 }{
		{0, 1}, {9.9, 1},
		{10, 4}, // last sample at the duplicated instant wins
		{15, 4}, {19.9, 4}, {20, 0.5},
	} {
		if got := r.Multiplier(c.t); got != c.want {
			t.Errorf("replay(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

// TestReplayMatchesLinearScan property-checks Multiplier against the obvious
// reference — a linear scan for the last sample at or before t — over random
// sorted, duplicate-bearing traces and probes on, between, before, and after
// the samples.
func TestReplayMatchesLinearScan(t *testing.T) {
	naive := func(r Replay, tSec float64) float64 {
		out := r.Mult[0]
		for i, ts := range r.TimesSec {
			if ts <= tSec {
				out = r.Mult[i]
			}
		}
		return out
	}
	rng := sim.NewRNG(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		times := make([]float64, n)
		mult := make([]float64, n)
		tcur := 0.0
		for i := range times {
			if i > 0 && rng.Bernoulli(0.3) {
				tcur = times[i-1] // duplicate instant
			} else {
				tcur += rng.Float64() * 10
			}
			times[i] = tcur
			mult[i] = 0.1 + rng.Float64()*3
		}
		r, err := NewReplay(times, mult)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		probes := []float64{times[0] - 1, times[n-1] + 1}
		for _, ts := range times {
			probes = append(probes, ts, ts-0.01, ts+0.01)
		}
		for i := 0; i < 10; i++ {
			probes = append(probes, rng.Float64()*(times[n-1]+2))
		}
		for _, p := range probes {
			if got, want := r.Multiplier(p), naive(r, p); got != want {
				t.Fatalf("trial %d: replay(%v) = %v, reference %v (times %v mult %v)",
					trial, p, got, want, times, mult)
			}
		}
	}
}

func TestShiftedShape(t *testing.T) {
	d, _ := NewDiurnal(0.3, 86400)
	s := Shifted{Inner: d, BySec: 21600}
	if got, want := s.Multiplier(0), d.Multiplier(21600); math.Abs(got-want) > 1e-12 {
		t.Fatalf("shifted(0) = %v, want %v", got, want)
	}
}

func TestShapedPoissonTracksShape(t *testing.T) {
	d, _ := NewDiurnal(0.5, 1000)
	p, err := NewShapedPoisson(100, d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate() != 100 {
		t.Fatalf("base rate %v", p.Rate())
	}
	// Mean gap at the peak must be about a third of the gap at the trough
	// (rate 150 vs 50).
	meanGap := func(at sim.Time) float64 {
		rng := sim.NewRNG(7)
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += p.NextAt(rng, at).Seconds()
		}
		return sum / n
	}
	peak := meanGap(sim.Time(250) * sim.Time(sim.Second))
	trough := meanGap(sim.Time(750) * sim.Time(sim.Second))
	if ratio := trough / peak; ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("trough/peak gap ratio %.2f, want ≈3", ratio)
	}
}

func TestShapedPoissonDeterministic(t *testing.T) {
	d, _ := NewDiurnal(0.4, 500)
	p, _ := NewShapedPoisson(80, d)
	draw := func(seed uint64) []sim.Duration {
		rng := sim.NewRNG(seed)
		now := sim.Time(0)
		out := make([]sim.Duration, 200)
		for i := range out {
			out[i] = p.NextAt(rng, now)
			now = now.Add(out[i])
		}
		return out
	}
	a, b, c := draw(1), draw(1), draw(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs under equal seeds", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical gap sequences")
	}
}

func TestShapedPoissonValidation(t *testing.T) {
	if _, err := NewShapedPoisson(0, Steady{}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewShapedPoisson(10, nil); err == nil {
		t.Fatal("nil shape accepted")
	}
	// Next (the time-blind path) draws at the t=0 rate.
	p, _ := NewShapedPoisson(10, Steady{})
	rng := sim.NewRNG(3)
	if p.Next(rng) <= 0 {
		t.Fatal("non-positive gap")
	}
	// A shape dipping to zero is clamped, not allowed to stall the client.
	z, _ := NewShapedPoisson(10, Flash{Base: 1, Peak: 0, StartSec: 0})
	if g := z.NextAt(rng, 0); g <= 0 {
		t.Fatal("clamped shape produced non-positive gap")
	}
}

// TestShapedPoissonNonPositiveRate pins the degenerate-rate guard: inside a
// Peak: 0 flash window the clamp floors the rate, and gaps stay finite,
// positive, and match the explicitly clamped rate's distribution; a
// zero-rate literal that bypassed the constructor yields the finite cap —
// never an Inf/NaN gap, and never the 1ns arrival storm an overflowed
// DurationOf produced.
func TestShapedPoissonNonPositiveRate(t *testing.T) {
	flash := Flash{Base: 1, Peak: 0, StartSec: 100, DurationSec: 50}
	p, err := NewShapedPoisson(10, flash)
	if err != nil {
		t.Fatal(err)
	}
	inWindow := sim.Time(120) * sim.Time(sim.Second)
	explicit := ShapedPoisson{BaseQPS: 10, Shape: Steady{Level: minMultiplier}}
	for seed := uint64(1); seed <= 5; seed++ {
		a, b := sim.NewRNG(seed), sim.NewRNG(seed)
		got, want := p.NextAt(a, inWindow), explicit.NextAt(b, 0)
		if got != want {
			t.Fatalf("seed %d: zero-peak window gap %v != clamped-rate gap %v", seed, got, want)
		}
		if got <= 0 || got > sim.DurationOf(maxGapSec) {
			t.Fatalf("seed %d: gap %v outside (0, cap]", seed, got)
		}
	}
	// Degenerate literals: zero, negative, and NaN base rates all emit the
	// finite cap.
	rng := sim.NewRNG(7)
	for _, qps := range []float64{0, -3, math.NaN()} {
		z := ShapedPoisson{BaseQPS: qps, Shape: Steady{}}
		if g := z.NextAt(rng, 0); g != sim.DurationOf(maxGapSec) {
			t.Errorf("qps %v: gap %v, want the finite cap %v", qps, g, sim.DurationOf(maxGapSec))
		}
	}
}
