package workload

import (
	"fmt"
	"math"
	"sort"

	"github.com/approx-sched/pliant/internal/sim"
)

// TraceStream replays recorded arrival instants as an arrival process: each
// call emits the gap to the next unconsumed instant, so consumers see the
// trace's bursts, lulls, and duplicate instants exactly as recorded — the
// arrival-side counterpart of the Replay load shape. It is stateful (a
// cursor over the instants); build a fresh stream per run.
type TraceStream struct {
	timesSec []float64
	// CycleSec, when positive, wraps the stream after that span: instant t
	// replays again at t+CycleSec, t+2·CycleSec, … for open-ended runs. Zero
	// (the default) ends the stream after the last instant — subsequent gaps
	// land past any reachable horizon.
	CycleSec float64

	idx int
	lap float64 // accumulated cycle offset
	// virtualNow backs the time-blind Next path: the instant the stream
	// believes it has reached, advanced by every emitted gap.
	virtualNow float64
}

// NewTraceStream validates the instants (non-empty, finite, non-decreasing —
// duplicates are legal and mean simultaneous arrivals) and returns a stream
// positioned before the first.
func NewTraceStream(timesSec []float64) (*TraceStream, error) {
	if len(timesSec) == 0 {
		return nil, fmt.Errorf("workload: trace stream needs at least one arrival instant")
	}
	for _, t := range timesSec {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("workload: trace stream instant %v not finite", t)
		}
	}
	if !sort.Float64sAreSorted(timesSec) {
		return nil, fmt.Errorf("workload: trace stream instants must not decrease")
	}
	return &TraceStream{timesSec: append([]float64(nil), timesSec...)}, nil
}

// NextAt returns the gap from now to the next recorded instant. Instants at
// or before now (duplicates, or a consumer that overshot) collapse to the
// minimum positive gap, so simultaneous trace arrivals surface as
// back-to-back events rather than being dropped.
func (s *TraceStream) NextAt(_ *sim.RNG, now sim.Time) sim.Duration {
	for {
		if s.idx >= len(s.timesSec) {
			if s.CycleSec <= 0 {
				// Exhausted: the next "arrival" is unreachably far out, but
				// finite so the event heap stays well-formed.
				return sim.DurationOf(maxGapSec)
			}
			// A period shorter than the recorded span would drop every
			// wrapped arrival into the past — a 1ns arrival storm, the
			// failure mode the shaped-Poisson rate cap exists to prevent.
			// Clamp the lap advance to the last instant so a misconfigured
			// cycle degrades to back-to-back replay instead.
			period := s.CycleSec
			if last := s.timesSec[len(s.timesSec)-1]; period < last {
				period = last
			}
			s.lap += period
			s.idx = 0
			continue
		}
		t := s.timesSec[s.idx] + s.lap
		s.idx++
		s.virtualNow = t
		gap := sim.DurationOf(t - now.Seconds())
		if gap <= 0 {
			gap = 1
		}
		return gap
	}
}

// Next is the time-blind ArrivalProcess path: gaps between consecutive
// recorded instants, tracked on the stream's own clock.
func (s *TraceStream) Next(rng *sim.RNG) sim.Duration {
	return s.NextAt(rng, sim.Time(sim.DurationOf(s.virtualNow)))
}

// Rate returns the mean arrival rate over the recorded span.
func (s *TraceStream) Rate() float64 {
	span := s.timesSec[len(s.timesSec)-1] - s.timesSec[0]
	if span <= 0 {
		return float64(len(s.timesSec))
	}
	return float64(len(s.timesSec)) / span
}

// Remaining reports how many recorded instants the current lap has not yet
// emitted — exposed so schedulers can size expectations against the replay.
func (s *TraceStream) Remaining() int { return len(s.timesSec) - s.idx }
