package workload

import (
	"math"
	"testing"

	"github.com/approx-sched/pliant/internal/sim"
)

func TestTraceStreamReplaysInstants(t *testing.T) {
	s, err := NewTraceStream([]float64{0, 1, 1, 2.5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Rate(); got != 0.5 {
		t.Errorf("rate %v, want 5 arrivals / 10s", got)
	}
	// Drive it the way the scheduler does: advance now by each gap.
	now := sim.Time(0)
	var arrivals []float64
	for i := 0; i < 5; i++ {
		gap := s.NextAt(nil, now)
		if gap <= 0 {
			t.Fatalf("arrival %d: non-positive gap %v", i, gap)
		}
		now = now.Add(gap)
		arrivals = append(arrivals, now.Seconds())
	}
	// The first instant is at 0, which collapses to the 1ns minimum; the
	// duplicate at t=1 lands 1ns after its twin. Everything else is exact.
	want := []float64{0, 1, 1, 2.5, 10}
	for i, a := range arrivals {
		if math.Abs(a-want[i]) > 1e-6 {
			t.Errorf("arrival %d at %vs, want %vs", i, a, want[i])
		}
	}
	if s.Remaining() != 0 {
		t.Errorf("remaining %d after draining", s.Remaining())
	}
	// Exhausted without a cycle: the next gap is finite but unreachably far.
	gap := s.NextAt(nil, now)
	if gap <= 0 || gap.Seconds() < 1e8 {
		t.Errorf("exhausted gap %v, want far-future finite", gap)
	}
}

func TestTraceStreamCycles(t *testing.T) {
	s, err := NewTraceStream([]float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	s.CycleSec = 10
	now := sim.Time(0)
	var arrivals []float64
	for i := 0; i < 6; i++ {
		now = now.Add(s.NextAt(nil, now))
		arrivals = append(arrivals, now.Seconds())
	}
	want := []float64{0, 4, 10, 14, 20, 24}
	for i, a := range arrivals {
		if math.Abs(a-want[i]) > 1e-6 {
			t.Errorf("cycled arrival %d at %vs, want %vs", i, a, want[i])
		}
	}
}

// TestTraceStreamShortCycleClamped: a cycle period shorter than the recorded
// span must degrade to back-to-back replay, not drop every wrapped arrival
// into the past and emit a 1ns arrival storm.
func TestTraceStreamShortCycleClamped(t *testing.T) {
	s, err := NewTraceStream([]float64{0, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	s.CycleSec = 10 // shorter than the 100s span: clamped to the last instant
	now := sim.Time(0)
	prev := -1.0
	for i := 0; i < 12; i++ {
		gap := s.NextAt(nil, now)
		if gap <= 0 {
			t.Fatalf("arrival %d: non-positive gap", i)
		}
		now = now.Add(gap)
		cur := now.Seconds()
		if cur < prev {
			t.Fatalf("arrival %d at %vs went backwards from %vs", i, cur, prev)
		}
		prev = cur
	}
	// Four laps of three arrivals: the clock must have advanced about four
	// clamped periods (100s each), not stalled at 1ns steps.
	if prev < 300 {
		t.Errorf("after 12 cycled arrivals the clock reached only %vs — arrival storm", prev)
	}
}

func TestTraceStreamTimeBlindNext(t *testing.T) {
	s, _ := NewTraceStream([]float64{1, 3, 6})
	rng := sim.NewRNG(1)
	gaps := []float64{s.Next(rng).Seconds(), s.Next(rng).Seconds(), s.Next(rng).Seconds()}
	want := []float64{1, 2, 3}
	for i := range gaps {
		if math.Abs(gaps[i]-want[i]) > 1e-6 {
			t.Errorf("gap %d = %vs, want %vs", i, gaps[i], want[i])
		}
	}
}

func TestTraceStreamValidation(t *testing.T) {
	if _, err := NewTraceStream(nil); err == nil {
		t.Error("empty instants accepted")
	}
	if _, err := NewTraceStream([]float64{3, 1}); err == nil {
		t.Error("decreasing instants accepted")
	}
	if _, err := NewTraceStream([]float64{0, math.NaN()}); err == nil {
		t.Error("NaN instant accepted")
	}
	if _, err := NewTraceStream([]float64{0, math.Inf(1)}); err == nil {
		t.Error("Inf instant accepted")
	}
	// The caller's slice is copied, not aliased.
	in := []float64{0, 5}
	s, err := NewTraceStream(in)
	if err != nil {
		t.Fatal(err)
	}
	in[1] = 99
	now := sim.Time(0)
	now = now.Add(s.NextAt(nil, now))
	now = now.Add(s.NextAt(nil, now))
	if got := now.Seconds(); math.Abs(got-5) > 1e-6 {
		t.Errorf("mutating the input slice changed the stream: arrival at %v", got)
	}
}
