package workload

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/approx-sched/pliant/internal/sim"
)

func TestConstant(t *testing.T) {
	c := Constant(5)
	rng := sim.NewRNG(1)
	if c.Sample(rng) != 5 || c.Mean() != 5 {
		t.Fatal("Constant misbehaves")
	}
}

func TestExponentialMean(t *testing.T) {
	e := Exponential{M: 3}
	rng := sim.NewRNG(2)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += e.Sample(rng)
	}
	if got := sum / n; math.Abs(got-3)/3 > 0.02 {
		t.Fatalf("empirical mean %v, want ~3", got)
	}
	if e.Mean() != 3 {
		t.Fatalf("Mean() = %v", e.Mean())
	}
}

func TestLogNormalMeanAndMedian(t *testing.T) {
	l := LogNormal{Median: 100, Sigma: 0.5}
	wantMean := 100 * math.Exp(0.125)
	if math.Abs(l.Mean()-wantMean) > 1e-9 {
		t.Fatalf("analytic mean %v, want %v", l.Mean(), wantMean)
	}
	rng := sim.NewRNG(3)
	const n = 100000
	below, sum := 0, 0.0
	for i := 0; i < n; i++ {
		v := l.Sample(rng)
		if v < 100 {
			below++
		}
		sum += v
	}
	if frac := float64(below) / n; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("median fraction %v, want ~0.5", frac)
	}
	if got := sum / n; math.Abs(got-wantMean)/wantMean > 0.02 {
		t.Fatalf("empirical mean %v, want ~%v", got, wantMean)
	}
}

func TestBimodal(t *testing.T) {
	b := Bimodal{Light: Constant(1), Heavy: Constant(100), PHeavy: 0.1}
	if want := 0.9*1 + 0.1*100; math.Abs(b.Mean()-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", b.Mean(), want)
	}
	rng := sim.NewRNG(4)
	heavy := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if b.Sample(rng) == 100 {
			heavy++
		}
	}
	if frac := float64(heavy) / n; math.Abs(frac-0.1) > 0.005 {
		t.Fatalf("heavy fraction %v, want ~0.1", frac)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("NewZipf(0) succeeded")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatal("NewZipf negative skew succeeded")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Rank(rng)]++
	}
	for r, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("rank %d frequency %v, want ~0.1", r, frac)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	z, err := NewZipf(1000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(6)
	top10 := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if z.Rank(rng) < 10 {
			top10++
		}
	}
	frac := float64(top10) / n
	want := z.HitRatio(10)
	if math.Abs(frac-want) > 0.01 {
		t.Fatalf("top-10 frequency %v, want ~%v", frac, want)
	}
	if want < 0.3 {
		t.Fatalf("zipf(1.0) top-10 ratio %v suspiciously low", want)
	}
}

func TestZipfHitRatioEdges(t *testing.T) {
	z, _ := NewZipf(100, 0.9)
	if z.HitRatio(0) != 0 {
		t.Fatal("HitRatio(0) != 0")
	}
	if z.HitRatio(100) != 1 || z.HitRatio(1000) != 1 {
		t.Fatal("HitRatio(N) != 1")
	}
	prev := 0.0
	for k := 1; k <= 100; k += 7 {
		h := z.HitRatio(k)
		if h < prev {
			t.Fatal("HitRatio not monotone")
		}
		prev = h
	}
}

// Property: zipf ranks are always in range.
func TestZipfRankRangeProperty(t *testing.T) {
	z, _ := NewZipf(50, 1.2)
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		for i := 0; i < 100; i++ {
			r := z.Rank(rng)
			if r < 0 || r >= 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonRateAndPositivity(t *testing.T) {
	p, err := NewPoisson(1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate() != 1000 {
		t.Fatalf("Rate = %v", p.Rate())
	}
	rng := sim.NewRNG(7)
	var total sim.Duration
	const n = 100000
	for i := 0; i < n; i++ {
		gap := p.Next(rng)
		if gap <= 0 {
			t.Fatal("non-positive gap")
		}
		total += gap
	}
	meanGap := total.Seconds() / n
	if math.Abs(meanGap-0.001)/0.001 > 0.02 {
		t.Fatalf("mean gap %v, want ~1ms", meanGap)
	}
}

func TestPoissonValidation(t *testing.T) {
	if _, err := NewPoisson(0); err == nil {
		t.Fatal("NewPoisson(0) succeeded")
	}
	if _, err := NewPoisson(-5); err == nil {
		t.Fatal("NewPoisson(-5) succeeded")
	}
}

func TestUniformArrivals(t *testing.T) {
	u := Uniform{QPS: 100}
	if u.Rate() != 100 {
		t.Fatal("Rate wrong")
	}
	rng := sim.NewRNG(8)
	want := sim.DurationOf(0.01)
	for i := 0; i < 10; i++ {
		if got := u.Next(rng); got != want {
			t.Fatalf("gap = %v, want %v", got, want)
		}
	}
}
