// Package pliant is a library-scale reproduction of "Pliant: Leveraging
// Approximation to Improve Datacenter Resource Efficiency" (Kulkarni, Qi,
// Delimitrou — HPCA 2019): an online cloud runtime that colocates
// latency-critical interactive services with approximate-computing
// applications, dynamically trading the approximate applications' output
// quality (and, when needed, cores) for the interactive service's tail
// latency.
//
// The package exposes the system's public surface:
//
//   - Scenario construction and execution (RunScenario): an interactive
//     service model (NGINX, memcached, or MongoDB), one or more approximate
//     applications from the 24-app catalog, and a runtime policy (Pliant's
//     controller, the precise baseline, a static-approximation ablation, or
//     the impact-aware arbiter) colocated on a simulated server.
//   - The approximation design-space exploration (Explore) that derives each
//     application's pareto-frontier variants.
//   - The experiment registry (Experiments, RunExperiment) that regenerates
//     every table and figure of the paper's evaluation.
//   - The paper's extension paths: ACCEPT-style hint files for user-provided
//     applications (ParseHints, Sec. 6.5), an online variant-impact learner
//     (RuntimeLearner, Sec. 6.5), batch cluster placement informed by the
//     runtime's tolerance telemetry (RunCluster, Sec. 6.4), and an online,
//     event-driven cluster scheduler (RunSched): jobs stream in over a
//     horizon, services ride time-varying load shapes, and placement
//     policies consume each node's live runtime telemetry.
//   - An energy dimension behind all of it (EnergyModelFor,
//     ScenarioConfig.EnergyModel, SchedConfig.Energy): per-node power curves
//     derived from the platform spec, joules accumulated in virtual time,
//     node-lifecycle autoscaling (ConsolidateAutoscaler), and the
//     approx-for-watts policy (ApproxForWattsAutoscaler) that spends
//     approximation slack on lower frequency states — the "energy"
//     experiment quantifies how many watts approximation buys at equal QoS.
//
// All randomness is seeded: equal configurations reproduce results
// bit-for-bit. See DESIGN.md for the architecture and the
// hardware-substitution rationale, and EXPERIMENTS.md for paper-vs-measured
// results.
package pliant

import (
	"io"

	"github.com/approx-sched/pliant/internal/accept"
	"github.com/approx-sched/pliant/internal/app"
	"github.com/approx-sched/pliant/internal/approx"
	"github.com/approx-sched/pliant/internal/autoscale"
	"github.com/approx-sched/pliant/internal/cluster"
	"github.com/approx-sched/pliant/internal/colocate"
	"github.com/approx-sched/pliant/internal/core"
	"github.com/approx-sched/pliant/internal/dse"
	"github.com/approx-sched/pliant/internal/energy"
	"github.com/approx-sched/pliant/internal/experiments"
	"github.com/approx-sched/pliant/internal/export"
	"github.com/approx-sched/pliant/internal/fault"
	"github.com/approx-sched/pliant/internal/monitor"
	"github.com/approx-sched/pliant/internal/obs"
	"github.com/approx-sched/pliant/internal/platform"
	"github.com/approx-sched/pliant/internal/sched"
	"github.com/approx-sched/pliant/internal/serve"
	"github.com/approx-sched/pliant/internal/service"
	"github.com/approx-sched/pliant/internal/sim"
	"github.com/approx-sched/pliant/internal/stats"
	"github.com/approx-sched/pliant/internal/trace"
	"github.com/approx-sched/pliant/internal/version"
	"github.com/approx-sched/pliant/internal/workload"
)

// Version returns the one-line build identity every pliant CLI prints for
// -version, derived from the toolchain's embedded build info.
func Version() string { return version.String() }

// Core simulation types.
type (
	// Time is an instant of virtual time in nanoseconds.
	Time = sim.Time
	// Duration is a span of virtual time in nanoseconds.
	Duration = sim.Duration
)

// Duration units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Platform modeling.
type (
	// PlatformSpec describes the server hardware model.
	PlatformSpec = platform.Spec
)

// TablePlatform returns the paper's Table 1 server: dual-socket Xeon
// E5-2699 v4 with 55MB LLC and 6 irq-dedicated cores.
func TablePlatform() PlatformSpec { return platform.TablePlatform() }

// SmallPlatform returns a scaled-down server for quick experiments.
func SmallPlatform() PlatformSpec { return platform.SmallPlatform() }

// Interactive services.
type (
	// ServiceClass selects one of the paper's three interactive services.
	ServiceClass = service.Class
	// ServiceConfig is a service model; obtain presets via ServicePreset.
	ServiceConfig = service.Config
)

// The paper's three latency-critical services.
const (
	NGINX     = service.NGINX
	Memcached = service.Memcached
	MongoDB   = service.MongoDB
)

// ServicePreset returns the calibrated model for a service class.
func ServicePreset(c ServiceClass) ServiceConfig { return service.Preset(c) }

// QoSOf returns a service's p99 QoS target (10ms / 200µs / 100ms).
func QoSOf(c ServiceClass) Duration { return service.QoSOf(c) }

// Approximate applications.
type (
	// AppProfile statically describes one approximate application.
	AppProfile = app.Profile
	// ApproxSite is one approximable location (perforable loop, elidable
	// lock, reducible-precision datum) in an application.
	ApproxSite = approx.Site
	// ApproxEffect is a variant's impact on time, traffic, and quality.
	ApproxEffect = approx.Effect
)

// Applications returns the 24-application catalog (PARSEC, SPLASH-2,
// MineBench, BioPerf) in the paper's presentation order.
func Applications() []AppProfile { return app.Catalog() }

// ApplicationNames returns the catalog names.
func ApplicationNames() []string { return app.Names() }

// ApplicationByName returns one catalog profile.
func ApplicationByName(name string) (AppProfile, error) { return app.ByName(name) }

// Design-space exploration.
type (
	// ExploreOptions tunes the design-space exploration.
	ExploreOptions = dse.Options
	// ExploreResult holds all examined candidates and the pareto-selected
	// variants for one application.
	ExploreResult = dse.Result
)

// DefaultExploreOptions mirrors the paper: 5% inaccuracy budget.
func DefaultExploreOptions() ExploreOptions { return dse.DefaultOptions() }

// Explore enumerates and selects approximate variants for an application.
func Explore(prof AppProfile, opts ExploreOptions) (ExploreResult, error) {
	return dse.Explore(prof, opts)
}

// VariantsFor returns an application's runtime variant table (precise first,
// then pareto-selected variants least→most approximate), memoized.
func VariantsFor(prof AppProfile) ([]ApproxEffect, error) { return dse.VariantsFor(prof) }

// ParseHints reads an ACCEPT-style hints document (the paper's Sec. 6.5
// user interface for public clouds) and returns the application profile it
// declares. Such profiles run in scenarios via ScenarioConfig.CustomApps.
func ParseHints(r io.Reader) (AppProfile, error) { return accept.Parse(r) }

// FormatHints renders a profile in the hints format, useful as a template
// for user-provided applications.
func FormatHints(prof AppProfile) string { return accept.Format(prof) }

// Runtime policies.
type (
	// Policy decides actuation for each decision interval.
	Policy = core.Policy
	// PolicySnapshot is the per-interval controller input.
	PolicySnapshot = core.Snapshot
	// PolicyAction is one actuation step.
	PolicyAction = core.Action
	// AppView is the controller's view of one colocated application.
	AppView = core.AppView
	// MonitorReport is the performance monitor's per-interval output.
	MonitorReport = monitor.Report
	// RuntimeKind selects a built-in runtime policy.
	RuntimeKind = colocate.RuntimeKind
)

// Policy action kinds.
const (
	SwitchVariant = core.SwitchVariant
	ReclaimCore   = core.ReclaimCore
	ReturnCore    = core.ReturnCore
)

// Built-in runtimes.
const (
	RuntimePliant       = colocate.Pliant
	RuntimePrecise      = colocate.Precise
	RuntimeStaticApprox = colocate.StaticApprox
	RuntimeImpactAware  = colocate.ImpactAware
	RuntimeLearner      = colocate.Learner
)

// Scenarios.
type (
	// ScenarioConfig describes one colocation: service, applications,
	// runtime, load, and decision parameters.
	ScenarioConfig = colocate.Config
	// ScenarioResult is the outcome of one run.
	ScenarioResult = colocate.Result
	// AppResult summarizes one application after a run.
	AppResult = colocate.AppResult
	// Series is a recorded per-interval metric.
	Series = stats.Series
	// Trace bundles the per-run series.
	Trace = stats.Trace
)

// RunScenario executes one colocation scenario.
func RunScenario(cfg ScenarioConfig) (ScenarioResult, error) { return colocate.Run(cfg) }

// WriteResultJSON serializes a scenario result as JSON for programmatic
// consumers.
func WriteResultJSON(w io.Writer, res ScenarioResult) error {
	return export.WriteResultJSON(w, res)
}

// WriteTraceCSV writes the run's per-interval series as a CSV table, ready
// for plotting the paper's dynamic-behavior figures.
func WriteTraceCSV(w io.Writer, res ScenarioResult) error {
	return export.WriteTraceCSV(w, res)
}

// Cluster scheduling (the paper's Sec. 6.4 scheduler integration).
type (
	// ClusterNode is one server in a cluster study.
	ClusterNode = cluster.Node
	// ClusterConfig describes a placement study.
	ClusterConfig = cluster.Config
	// ClusterResult aggregates a cluster run.
	ClusterResult = cluster.Result
	// PlacementPolicy decides where approximate jobs run.
	PlacementPolicy = cluster.Policy
	// RoundRobinPlacement is the service-blind baseline.
	RoundRobinPlacement = cluster.RoundRobin
	// InterferenceAwarePlacement uses per-app pressure and per-service
	// tolerance, as the paper's Fig. 10 discussion suggests.
	InterferenceAwarePlacement = cluster.InterferenceAware
)

// RunCluster places a batch of approximate jobs across nodes and runs every
// node's colocation under the Pliant runtime.
func RunCluster(cfg ClusterConfig) (ClusterResult, error) { return cluster.Run(cfg) }

// CompareClusterPolicies runs the same batch under several placement
// policies.
func CompareClusterPolicies(cfg ClusterConfig, policies ...PlacementPolicy) ([]ClusterResult, error) {
	return cluster.Compare(cfg, policies...)
}

// RenderClusterComparison formats a policy comparison table.
func RenderClusterComparison(results []ClusterResult) string { return cluster.Render(results) }

// Time-varying load shapes (cluster-horizon workloads).
type (
	// LoadShape is a deterministic time-varying load multiplier.
	LoadShape = workload.Shape
	// SteadyLoad is the constant shape (zero value = 1.0).
	SteadyLoad = workload.Steady
	// DiurnalLoad is a sinusoidal day: ±Amp around 1 over PeriodSec.
	DiurnalLoad = workload.Diurnal
	// FlashLoad is a step or flash crowd.
	FlashLoad = workload.Flash
	// ReplayLoad replays a recorded (time, multiplier) trace.
	ReplayLoad = workload.Replay
)

// NewDiurnalLoad returns a validated diurnal shape.
func NewDiurnalLoad(amp, periodSec float64) (DiurnalLoad, error) {
	return workload.NewDiurnal(amp, periodSec)
}

// NewFlashLoad returns a validated step/flash-crowd shape.
func NewFlashLoad(base, peak, startSec, durationSec float64) (FlashLoad, error) {
	return workload.NewFlash(base, peak, startSec, durationSec)
}

// NewReplayLoad returns a validated trace-replay shape.
func NewReplayLoad(timesSec, mult []float64) (ReplayLoad, error) {
	return workload.NewReplay(timesSec, mult)
}

// Production trace ingestion (internal/trace): parse Google ClusterData-style
// task events or Azure VM-trace-style rows into a canonical job stream,
// normalize it (rebase, rescale, deterministically down-sample), and replay
// it through the online scheduler via SchedConfig.Trace.
type (
	// ClusterTrace is a parsed, validated, arrival-ordered trace.
	ClusterTrace = trace.Trace
	// TraceJob is one normalized trace row.
	TraceJob = trace.Job
	// TraceFormat selects a supported trace schema.
	TraceFormat = trace.Format
	// TraceOptions tunes trace normalization (span, rate/duration scaling,
	// down-sampling).
	TraceOptions = trace.Options
	// TraceSynthConfig tunes the schema-exact fixture generator.
	TraceSynthConfig = trace.SynthConfig
	// TraceArrivals replays a trace's arrival instants as an arrival
	// process (workload.TraceStream); SchedConfig.Trace builds one
	// internally, and custom consumers can drive it directly.
	TraceArrivals = workload.TraceStream
)

// The supported trace schemas.
const (
	GoogleTraceFormat = trace.Google
	AzureTraceFormat  = trace.Azure
)

// ParseTrace reads a cluster trace in the given format, streaming.
func ParseTrace(r io.Reader, f TraceFormat) (*ClusterTrace, error) { return trace.Parse(r, f) }

// TraceFormatByName resolves "google" or "azure" to a TraceFormat.
func TraceFormatByName(name string) (TraceFormat, error) { return trace.FormatByName(name) }

// SynthesizeTrace emits a schema-exact CSV fixture for tests and demos — the
// real parse path without gigabytes of trace data.
func SynthesizeTrace(cfg TraceSynthConfig) []byte { return trace.Synthesize(cfg) }

// NewTraceArrivals returns an arrival process replaying the given instants.
func NewTraceArrivals(timesSec []float64) (*TraceArrivals, error) {
	return workload.NewTraceStream(timesSec)
}

// JobsFromTrace maps a trace's jobs onto catalog applications by resource
// shape — the translation SchedConfig.Trace applies internally, exposed for
// custom pipelines.
func JobsFromTrace(tr *ClusterTrace, candidates []string) ([]string, error) {
	return sched.JobsFromTrace(tr, candidates)
}

// Energy modeling and autoscaling: the watts that approximation buys. A
// power model derived from the platform spec attaches to scenarios
// (ScenarioConfig.EnergyModel) and scheduling runs (SchedConfig.Energy);
// autoscalers park idle nodes and spend approximation slack on lower
// frequency states (SchedConfig.Autoscaler).
type (
	// EnergyModel is a per-node power curve (idle/active over utilization,
	// frequency ladder, wake cost) derived from a PlatformSpec.
	EnergyModel = energy.Model
	// EnergyAccumulator integrates power over virtual time into joules.
	EnergyAccumulator = energy.Accumulator
	// AutoscaleState is a node's lifecycle position (active, draining,
	// parked, waking).
	AutoscaleState = autoscale.State
	// AutoscaleController decides lifecycle and frequency transitions at
	// every scheduling boundary.
	AutoscaleController = autoscale.Controller
	// AutoscaleView is the cluster snapshot controllers decide against.
	AutoscaleView = autoscale.View
	// AutoscaleAction is one lifecycle actuation.
	AutoscaleAction = autoscale.Action
	// ConsolidateAutoscaler parks surplus idle nodes behind a capacity
	// reserve and wakes them under backlog.
	ConsolidateAutoscaler = autoscale.Consolidate
	// ApproxForWattsAutoscaler adds slack-funded frequency scaling on top
	// of consolidation — the Pliant-style energy policy.
	ApproxForWattsAutoscaler = autoscale.ApproxForWatts
)

// Node lifecycle states.
const (
	NodeActive   = autoscale.Active
	NodeDraining = autoscale.Draining
	NodeParked   = autoscale.Parked
	NodeWaking   = autoscale.Waking
	NodeDown     = autoscale.Down
)

// NoReserveSlots requests an explicit zero-slot reserve from
// ConsolidateAutoscaler, whose zero value defaults to a two-slot headroom.
const NoReserveSlots = autoscale.NoReserve

// EnergyModelFor derives a power model from a server spec: peak draw
// calibrated to the Table 1 part's TDP, a ~45%-of-peak idle floor, and a
// three-state frequency ladder at 60/80/100% of base frequency.
func EnergyModelFor(spec PlatformSpec) EnergyModel { return energy.ModelFor(spec) }

// Online cluster scheduling (the event-driven form of Sec. 6.4: job streams,
// time-varying load, telemetry-fed placement).
type (
	// SchedConfig describes one online scheduling run.
	SchedConfig = sched.Config
	// SchedResult aggregates an online scheduling run.
	SchedResult = sched.Result
	// SchedJobOutcome is one job's record in a SchedResult.
	SchedJobOutcome = sched.JobOutcome
	// SchedPolicy decides placement at every scheduling window.
	SchedPolicy = sched.Policy
	// SchedJob is the job view offered to policies.
	SchedJob = sched.Job
	// SchedNodeState is the live node view offered to policies.
	SchedNodeState = sched.NodeState
	// NodeTelemetry is the Pliant runtime feedback a node feeds the
	// scheduler.
	NodeTelemetry = cluster.Telemetry
	// SchedNodeEnergy is one node's share of a run's energy ledger.
	SchedNodeEnergy = sched.NodeEnergy
	// FirstFitPlacement is the telemetry-blind online baseline.
	FirstFitPlacement = sched.FirstFit
	// BestFitPlacement packs slots tightest-first.
	BestFitPlacement = sched.BestFit
	// SpreadPlacement scatters jobs emptiest-node-first — the QoS-friendly,
	// watts-hostile endpoint of the energy study.
	SpreadPlacement = sched.Spread
	// TelemetryAwarePlacement consumes live runtime telemetry and per-app
	// pressure for placement and admission.
	TelemetryAwarePlacement = sched.TelemetryAware
)

// RunSched executes one online scheduling study: jobs arrive over the
// horizon, an online policy places or defers them at every scheduling
// window, and each node runs its colocation under the Pliant runtime with
// time-varying service load.
func RunSched(cfg SchedConfig) (SchedResult, error) { return sched.Run(cfg) }

// CompareSchedPolicies runs the same arrival stream under several online
// policies.
func CompareSchedPolicies(cfg SchedConfig, policies ...SchedPolicy) ([]SchedResult, error) {
	return sched.Compare(cfg, policies...)
}

// RenderSchedComparison formats an online policy comparison table.
func RenderSchedComparison(results []SchedResult) string { return sched.Render(results) }

// WriteSchedResultJSON serializes an online scheduling result as JSON.
func WriteSchedResultJSON(w io.Writer, res SchedResult) error {
	return export.WriteSchedResultJSON(w, res)
}

// WriteSchedTraceCSV writes the cluster-horizon series (queue depth,
// utilization, QoS-met fraction, …) as a CSV table.
func WriteSchedTraceCSV(w io.Writer, res SchedResult) error {
	return export.WriteSchedTraceCSV(w, res)
}

// Step-driven scheduling (the serving layer's engine surface): a SchedRunner
// holds one online run open and advances it one scheduling window at a time,
// with live snapshots and mid-run job injection. Driving a runner to its
// horizon is byte-identical to RunSched on the same config.
type (
	// SchedRunner is one open, step-driven online scheduling run.
	SchedRunner = sched.Runner
	// SchedSnapshot is a runner's live mid-run view.
	SchedSnapshot = sched.Snapshot
)

// NewSchedRunner validates the config and opens a step-driven run.
func NewSchedRunner(cfg SchedConfig) (*SchedRunner, error) { return sched.NewRunner(cfg) }

// Fault injection and recovery (internal/fault): seeded, virtual-time
// failures wired through the online scheduler. A FaultPlan attached via
// SchedConfig.Faults compiles — purely from the run seed — into a typed event
// stream: MTTF/MTTR node crash/recover churn, scripted correlated outages
// that drop whole failure domains, telemetry dropouts that freeze a node's
// feedback, and straggler windows that degrade its effective frequency.
// Crashed nodes drop their jobs back to the queue under a per-job retry
// budget with exponential backoff and domain-aware anti-affinity on retry;
// the DegradeUnderLossController funds the capacity shortfall by waking
// reserves instead of shedding jobs. Fault-injected runs stay byte-identical
// across shard counts.
type (
	// FaultPlan describes a run's fault injection (SchedConfig.Faults).
	FaultPlan = fault.Plan
	// FaultOutage is one scripted correlated failure-domain outage.
	FaultOutage = fault.Outage
	// FaultEvent is one compiled, typed fault event.
	FaultEvent = fault.Event
	// FaultEventKind discriminates fault events.
	FaultEventKind = fault.EventKind
	// DegradeUnderLossController wraps a normal autoscaler and, while crashed
	// capacity leaves demand unmet, wakes every reserve and snaps survivors
	// to nominal frequency instead of shedding jobs.
	DegradeUnderLossController = fault.DegradeUnderLoss
)

// Fault event kinds.
const (
	FaultRecover        = fault.Recover
	FaultCrash          = fault.Crash
	FaultTelemetryStale = fault.TelemetryStale
	FaultStraggle       = fault.Straggle
)

// FaultPlanFromTrace derives a fault plan from a parsed cluster trace's
// observed failure fraction (jobs whose terminal cause was a failure,
// eviction, kill, or loss), for replaying a production trace's fault rate.
func FaultPlanFromTrace(tr *ClusterTrace, horizonSec float64) (FaultPlan, error) {
	return fault.FromTrace(tr, horizonSec)
}

// CompileFaultPlan expands a plan into its deterministic event stream for
// the given run seed, node count, and horizon — what the scheduler applies
// internally, exposed for inspection and tests.
func CompileFaultPlan(p FaultPlan, runSeed uint64, nodes int, horizonSec float64) []FaultEvent {
	return p.Compile(runSeed, nodes, horizonSec)
}

// Observability (internal/obs): a deterministic, virtual-time view into a
// scheduling run. An Observer attached via SchedConfig.Obs carries three
// channels — a ring-buffered decision tracer exportable as Chrome
// trace-event JSON (Perfetto-loadable), a metrics registry snapshotted at
// every window boundary (Prometheus text format or CSV), and a wall-clock
// shard profiler surfaced in SchedResult.ShardProfiles. Tracer and metrics
// output is byte-identical for any shard count; attaching an observer never
// perturbs simulation results.
type (
	// Observer bundles the three observability channels for one run.
	Observer = obs.Observer
	// ObserverOptions tunes observer construction (trace ring capacity).
	ObserverOptions = obs.Options
	// ObsTracer is the bounded, alloc-free virtual-time decision tracer.
	ObsTracer = obs.Tracer
	// ObsRecord is one fixed-size tracer record.
	ObsRecord = obs.Record
	// ObsRecordKind discriminates tracer records.
	ObsRecordKind = obs.Kind
	// ObsRegistry is the metrics registry (counters, gauges, histograms).
	ObsRegistry = obs.Registry
	// ObsLabel is one metric label pair.
	ObsLabel = obs.Label
	// ObsTraceMeta names the lanes of a Chrome trace export.
	ObsTraceMeta = obs.TraceMeta
	// ShardProfile is one shard's wall-clock account of a run.
	ShardProfile = obs.ShardProfile
)

// Tracer record kinds.
const (
	ObsKindWindow     = obs.KindWindow
	ObsKindEpisode    = obs.KindEpisode
	ObsKindPlacement  = obs.KindPlacement
	ObsKindAutoscale  = obs.KindAutoscale
	ObsKindLifecycle  = obs.KindLifecycle
	ObsKindReplayDrop = obs.KindReplayDrop
	ObsKindFault      = obs.KindFault
)

// NewObserver builds an observer with all three channels attached. Attach a
// fresh one per run via SchedConfig.Obs.
func NewObserver(opts ObserverOptions) *Observer { return obs.New(opts) }

// WriteChromeTrace renders a tracer's records as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: one timeline
// lane per node plus a scheduler lane.
func WriteChromeTrace(w io.Writer, t *ObsTracer, meta ObsTraceMeta) error {
	return obs.WriteChromeTrace(w, t, meta)
}

// WriteMetricsProm writes a registry's current values in Prometheus text
// exposition format.
func WriteMetricsProm(w io.Writer, r *ObsRegistry) error { return obs.WriteMetricsProm(w, r) }

// WriteMetricsCSV writes a registry's per-window snapshots as a CSV table,
// one row per scheduling boundary.
func WriteMetricsCSV(w io.Writer, r *ObsRegistry) error { return obs.WriteMetricsCSV(w, r) }

// The serving layer (internal/serve): a long-running shadow-scheduler daemon
// over the step-driven engine. A ServeServer manages named sessions — each
// one or more lockstep engines advanced faster-than-real-time on a session
// goroutine — behind an HTTP API (cmd/pliant-served): JSON session specs,
// bounded ingest queues with 429 backpressure, Server-Sent-Events decision
// streams, and Prometheus metrics. A session with several candidate policies
// is a shadow replay with per-window verdict diffs; ShadowReplay is its
// offline, HTTP-free form. Sessions replayed through the daemon export
// byte-identical JSON/CSV to batch RunSched.
type (
	// ServeServer is the daemon: session manager + http.Handler.
	ServeServer = serve.Server
	// ServeOptions tunes a ServeServer.
	ServeOptions = serve.Options
	// ServeSpec is the JSON form of one session's configuration — the same
	// surface the pliant-sched flags expose, resolved by the same code.
	ServeSpec = serve.Spec
	// ServeTraceSpec carries a production trace in a session spec.
	ServeTraceSpec = serve.TraceSpec
	// ServeSynthSpec tunes the spec's trace fixture generator.
	ServeSynthSpec = serve.SynthSpec
	// ServeOutageSpec is one scripted outage in a session spec.
	ServeOutageSpec = serve.OutageSpec
	// ServeResolved is a spec lowered onto the scheduler's native config.
	ServeResolved = serve.Resolved
	// ServeSession is one live session.
	ServeSession = serve.Session
	// ServeSessionStatus is a session's JSON status view.
	ServeSessionStatus = serve.SessionStatus
	// ShadowOutcome is a finished shadow replay: results + verdicts.
	ShadowOutcome = serve.ShadowOutcome
	// ShadowWindowVerdict is one window's cross-policy diff.
	ShadowWindowVerdict = serve.WindowVerdict
	// ShadowPolicyVerdict is one policy's slice of a window verdict.
	ShadowPolicyVerdict = serve.PolicyVerdict
)

// NewServeServer returns an empty session manager; mount it on any net/http
// server (it implements http.Handler) or call its ListenAndServe.
func NewServeServer(opts ServeOptions) *ServeServer { return serve.NewServer(opts) }

// ResolveServeSpec lowers a session spec exactly as the pliant-sched flags
// would — the shared configuration surface of the CLI and the daemon.
func ResolveServeSpec(sp ServeSpec) (ServeResolved, error) { return sp.Resolve() }

// RunShadowReplay fans one arrival feed out to the spec's candidate policies
// in lockstep and blocks until the horizon — a daemon session without the
// daemon.
func RunShadowReplay(sp ServeSpec) (*ShadowOutcome, error) { return serve.ShadowReplay(sp) }

// Experiments.
type (
	// ExperimentProfile selects the execution scale of experiments.
	ExperimentProfile = experiments.Profile
	// ExperimentEntry is one registered paper table/figure.
	ExperimentEntry = experiments.Entry
	// Renderer renders an experiment result as the paper's rows/series.
	Renderer = experiments.Renderer
)

// FastProfile returns the scaled experiment profile (minutes of CPU).
func FastProfile() ExperimentProfile { return experiments.Fast() }

// FullProfile returns the paper-scale experiment profile (hours of CPU).
func FullProfile() ExperimentProfile { return experiments.Full() }

// Experiments returns every registered experiment, one per paper table or
// figure.
func Experiments() []ExperimentEntry { return experiments.Registry() }

// RunExperiment runs one experiment by ID ("table1", "fig1dse", "fig1impact",
// "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "overhead",
// "sched", "energy", "trace", "obs", "fault", "shadow").
func RunExperiment(id string, p ExperimentProfile) (Renderer, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(p)
}
