package pliant_test

import (
	"strings"
	"testing"

	pliant "github.com/approx-sched/pliant"
)

// These tests exercise the public API surface exactly as a downstream user
// would — nothing here touches internal packages.

func TestPublicPlatform(t *testing.T) {
	spec := pliant.TablePlatform()
	if spec.CoresPerSocket != 22 || spec.LLCMB != 55 {
		t.Fatalf("Table 1 platform: %+v", spec)
	}
	if pliant.SmallPlatform().UsableCores() >= spec.UsableCores() {
		t.Fatal("small platform not smaller")
	}
}

func TestPublicServices(t *testing.T) {
	if pliant.QoSOf(pliant.NGINX) != 10*pliant.Millisecond {
		t.Fatal("NGINX QoS")
	}
	if pliant.QoSOf(pliant.Memcached) != 200*pliant.Microsecond {
		t.Fatal("memcached QoS")
	}
	if pliant.QoSOf(pliant.MongoDB) != 100*pliant.Millisecond {
		t.Fatal("MongoDB QoS")
	}
	cfg := pliant.ServicePreset(pliant.Memcached)
	if cfg.Name != "memcached" {
		t.Fatalf("preset name %q", cfg.Name)
	}
}

func TestPublicCatalog(t *testing.T) {
	apps := pliant.Applications()
	if len(apps) != 24 {
		t.Fatalf("catalog size %d", len(apps))
	}
	names := pliant.ApplicationNames()
	if len(names) != 24 {
		t.Fatalf("names size %d", len(names))
	}
	p, err := pliant.ApplicationByName("canneal")
	if err != nil || p.Name != "canneal" {
		t.Fatalf("ByName: %v %v", p.Name, err)
	}
	if _, err := pliant.ApplicationByName("nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestPublicExplore(t *testing.T) {
	prof, _ := pliant.ApplicationByName("SNP")
	opts := pliant.DefaultExploreOptions()
	opts.MaxVariants = prof.MaxVariants
	res, err := pliant.Explore(prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 5 {
		t.Fatalf("SNP selected %d variants, paper reports 5", len(res.Selected))
	}
	variants, err := pliant.VariantsFor(prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 6 { // precise + 5
		t.Fatalf("variant table %d", len(variants))
	}
}

func TestPublicScenarioEndToEnd(t *testing.T) {
	res, err := pliant.RunScenario(pliant.ScenarioConfig{
		Seed:         5,
		Service:      pliant.MongoDB,
		AppNames:     []string{"raytrace"},
		Runtime:      pliant.RuntimePliant,
		LoadFraction: 0.78,
		TimeScale:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Apps[0].Done {
		t.Fatal("app did not finish")
	}
	if res.TypicalOverQoS() > 1.2 {
		t.Fatalf("steady p99 %.2fx QoS", res.TypicalOverQoS())
	}
}

func TestPublicCustomPolicy(t *testing.T) {
	// A trivial always-most-approximate policy through the public Policy
	// surface.
	res, err := pliant.RunScenario(pliant.ScenarioConfig{
		Seed:         5,
		Service:      pliant.Memcached,
		AppNames:     []string{"SNP"},
		Policy:       pinMost{},
		LoadFraction: 0.78,
		TimeScale:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != "pin-most" {
		t.Fatalf("runtime %q", res.Runtime)
	}
	if res.Apps[0].Inaccuracy <= 0 {
		t.Fatal("pinned policy produced no approximation")
	}
}

type pinMost struct{}

func (pinMost) Name() string { return "pin-most" }

func (pinMost) Decide(s pliant.PolicySnapshot) []pliant.PolicyAction {
	var out []pliant.PolicyAction
	for i, a := range s.Apps {
		if !a.Done && a.Variant < a.MostApproximate {
			out = append(out, pliant.PolicyAction{Kind: pliant.SwitchVariant, App: i, To: a.MostApproximate})
		}
	}
	return out
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(pliant.Experiments()) != 17 {
		t.Fatalf("registry size %d", len(pliant.Experiments()))
	}
	p := pliant.FastProfile()
	r, err := pliant.RunExperiment("table1", p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
	if _, err := pliant.RunExperiment("nope", p); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPublicOnlineScheduler(t *testing.T) {
	shape, err := pliant.NewDiurnalLoad(0.25, 60)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pliant.SchedConfig{
		Seed: 3,
		Nodes: []pliant.ClusterNode{
			{Name: "cache-1", Service: pliant.Memcached, MaxApps: 3},
			{Name: "web-1", Service: pliant.NGINX, MaxApps: 3},
			{Name: "db-1", Service: pliant.MongoDB, MaxApps: 3},
		},
		Policy:     pliant.TelemetryAwarePlacement{},
		Horizon:    60 * pliant.Second,
		Epoch:      10 * pliant.Second,
		JobsPerSec: 0.15,
		BaseLoad:   0.65,
		Shape:      shape,
		TimeScale:  32,
	}
	res, err := pliant.RunSched(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 || res.Placed == 0 {
		t.Fatalf("no jobs flowed: %+v", res)
	}
	var buf strings.Builder
	if err := pliant.WriteSchedResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"policy": "telemetry-aware"`) {
		t.Fatal("JSON export missing policy")
	}
	buf.Reset()
	if err := pliant.WriteSchedTraceCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "queue.depth") {
		t.Fatal("CSV export missing queue series")
	}
	out := pliant.RenderSchedComparison([]pliant.SchedResult{res})
	if !strings.Contains(out, "telemetry-aware") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestPublicCustomSchedPolicy routes a user-defined online policy through
// the public surface, mirroring TestPublicCustomPolicy for the runtime.
func TestPublicCustomSchedPolicy(t *testing.T) {
	cfg := pliant.SchedConfig{
		Seed: 4,
		Nodes: []pliant.ClusterNode{
			{Name: "a", Service: pliant.MongoDB, MaxApps: 2},
			{Name: "b", Service: pliant.MongoDB, MaxApps: 2},
		},
		Policy:     lastFree{},
		Horizon:    40 * pliant.Second,
		Epoch:      10 * pliant.Second,
		JobsPerSec: 0.1,
		BaseLoad:   0.6,
		TimeScale:  32,
	}
	res, err := pliant.RunSched(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "last-free" {
		t.Fatalf("policy %q", res.Policy)
	}
}

type lastFree struct{}

func (lastFree) Name() string { return "last-free" }

func (lastFree) Place(_ pliant.SchedJob, nodes []pliant.SchedNodeState) int {
	for i := len(nodes) - 1; i >= 0; i-- {
		if nodes[i].Free > 0 {
			return nodes[i].Index
		}
	}
	return -1
}
